// Audited: every expect in this file is an `invariant:`/`precondition:`
// panic (see the arm-check `no-panic` lint).
#![allow(clippy::expect_used)]

//! The §7.1 office-case experiment.
//!
//! Replays the Figure 4 workweek trace, feeding the profile server, and
//! measures (a) the three-level prediction's accuracy on each C→D
//! traversal, and (b) the bandwidth-time each reservation scheme would
//! waste — quantifying the paper's two conclusions: "deterministic
//! reservation for only the occupants of an office cell is valid" and
//! "brute force advance reservation in all neighboring cells of a current
//! cell is extremely wasteful".

use std::collections::BTreeMap;

use arm_mobility::environment::Figure4;
use arm_mobility::models::office_case::{self, OfficeCaseParams};
use arm_mobility::MobilityTrace;
use arm_net::ids::PortableId;
use arm_profiles::prediction::PredictionLevel;
use arm_profiles::ProfileServer;
use arm_sim::SimRng;

/// Accuracy accounting for one population.
#[derive(Clone, Copy, Debug, Default)]
pub struct Accuracy {
    /// Predictions attempted (a prediction existed).
    pub predicted: u64,
    /// Predictions that matched the actual next cell.
    pub correct: u64,
    /// Moves with no prediction (level 3).
    pub unpredicted: u64,
}

impl Accuracy {
    /// Hit rate over attempted predictions.
    pub fn hit_rate(&self) -> f64 {
        if self.predicted == 0 {
            0.0
        } else {
            self.correct as f64 / self.predicted as f64
        }
    }
}

/// The experiment's outputs.
#[derive(Clone, Debug)]
pub struct OfficeCaseResult {
    /// Paper-style fan-out counts: (population label, C→D total, →A, →B,
    /// →F/G).
    pub fanout: Vec<(String, usize, usize, usize, usize)>,
    /// Prediction accuracy per population.
    pub accuracy: BTreeMap<String, Accuracy>,
    /// Reserved cell-seconds per scheme (brute force / aggregate /
    /// prediction) — one "cell-second" = one user's floor reserved in one
    /// cell for one second.
    pub reserved_cell_seconds: BTreeMap<String, f64>,
    /// Cell-seconds that were actually used by a handoff (same for all
    /// schemes; the ratio is the efficiency).
    pub useful_cell_seconds: f64,
}

/// Run the workweek with the paper's default counts.
pub fn run(seed: u64) -> OfficeCaseResult {
    run_with(&OfficeCaseParams::default(), seed)
}

/// Run with explicit counts.
pub fn run_with(params: &OfficeCaseParams, seed: u64) -> OfficeCaseResult {
    let f4 = Figure4::build();
    let mut rng = SimRng::new(seed);
    let trace = office_case::generate(&f4, params, &mut rng);
    analyze(&f4, &trace)
}

/// Analyse an arbitrary Figure 4 trace.
pub fn analyze(f4: &Figure4, trace: &MobilityTrace) -> OfficeCaseResult {
    let mut server = ProfileServer::new(arm_net::ids::ZoneId(0));
    f4.env.seed_profiles(&mut server);

    let label = |p: PortableId| -> String {
        if p == f4.faculty {
            "faculty".into()
        } else if f4.students.contains(&p) {
            "students".into()
        } else {
            "others".into()
        }
    };

    let mut accuracy: BTreeMap<String, Accuracy> = BTreeMap::new();
    let mut reserved: BTreeMap<String, f64> = BTreeMap::new();
    for k in ["brute-force", "aggregate", "prediction"] {
        reserved.insert(k.into(), 0.0);
    }
    let mut useful = 0.0;

    // Track each portable's dwell start to weigh reservations by time.
    let mut dwell_start: BTreeMap<PortableId, arm_sim::SimTime> = BTreeMap::new();

    for ev in trace.events() {
        let who = label(ev.portable);
        if let Some(from) = ev.from {
            // Score the prediction made while the portable dwelt in
            // `from` (with the context the server had *before* this
            // move was recorded).
            let pred = server.predict_at(
                ev.portable,
                server.context(ev.portable).and_then(|(prev, _)| prev),
                from,
            );
            let acc = accuracy.entry(who.clone()).or_default();
            match pred.level {
                PredictionLevel::Default => acc.unpredicted += 1,
                _ => {
                    acc.predicted += 1;
                    if pred.cell == Some(ev.to) {
                        acc.correct += 1;
                    }
                }
            }
            // Reservation accounting over the dwell that just ended.
            let dwell = ev
                .time
                .saturating_since(dwell_start.get(&ev.portable).copied().unwrap_or(ev.time))
                .as_secs_f64();
            let n_neighbors = f4.env.neighbors(from).count() as f64;
            *reserved.get_mut("brute-force").expect("invariant: seeded") += dwell * n_neighbors;
            // Aggregate spreads one user's worth across neighbours: one
            // cell-equivalent total.
            *reserved.get_mut("aggregate").expect("invariant: seeded") += dwell;
            // The paper's scheme reserves in exactly one cell — and only
            // while the portable is *mobile*: once it dwells past T_th
            // (5 min) it is reclassified static and its claim released
            // (§3.4.2), so long office/corridor sojourns cost nothing.
            if pred.cell.is_some() {
                *reserved.get_mut("prediction").expect("invariant: seeded") += dwell.min(300.0);
            }
            // A handoff consumes one reservation-equivalent.
            useful += dwell;
            server.record_handoff(
                ev.portable,
                server.context(ev.portable).and_then(|(prev, _)| prev),
                from,
                ev.to,
                ev.time,
            );
        } else {
            server.portable_entered(ev.portable, ev.to);
        }
        dwell_start.insert(ev.portable, ev.time);
    }

    // Fan-out table.
    let mut fanout = Vec::new();
    let pops: Vec<(String, Vec<PortableId>)> = vec![
        ("faculty".into(), vec![f4.faculty]),
        ("students".into(), f4.students.to_vec()),
        ("all".into(), trace.portables()),
    ];
    for (name, members) in pops {
        let cd: usize = members
            .iter()
            .map(|p| trace.count_transition_of(*p, f4.c, f4.d))
            .sum();
        let to_a: usize = members
            .iter()
            .map(|p| trace.count_transition_of(*p, f4.d, f4.a))
            .sum();
        let to_b: usize = members
            .iter()
            .map(|p| trace.count_transition_of(*p, f4.e, f4.b))
            .sum();
        let to_fg: usize = members
            .iter()
            .map(|p| trace.count_transition_of(*p, f4.e, f4.f))
            .sum();
        fanout.push((name, cd, to_a, to_b, to_fg));
    }

    OfficeCaseResult {
        fanout,
        accuracy,
        reserved_cell_seconds: reserved,
        useful_cell_seconds: useful,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_reproduces_paper_counts() {
        let r = run(42);
        let faculty = r.fanout.iter().find(|f| f.0 == "faculty").expect("row");
        assert_eq!((faculty.1, faculty.2, faculty.3), (127, 94, 20));
        let students = r.fanout.iter().find(|f| f.0 == "students").expect("row");
        assert_eq!((students.1, students.2, students.3), (218, 12, 173));
        let all = r.fanout.iter().find(|f| f.0 == "all").expect("row");
        assert_eq!(all.1, 1384);
    }

    #[test]
    fn regulars_become_predictable() {
        let r = run(42);
        // Faculty and students have strong habits: after the profile
        // warms up their predictions are mostly right.
        let fac = r.accuracy.get("faculty").expect("faculty accuracy");
        assert!(fac.hit_rate() > 0.55, "faculty hit rate {}", fac.hit_rate());
        let stu = r.accuracy.get("students").expect("student accuracy");
        assert!(stu.hit_rate() > 0.55, "student hit rate {}", stu.hit_rate());
    }

    #[test]
    fn brute_force_is_extremely_wasteful() {
        let r = run(42);
        let bf = r.reserved_cell_seconds["brute-force"];
        let pred = r.reserved_cell_seconds["prediction"];
        // The paper's conclusion (b): brute force reserves a multiple of
        // what prediction does — at least 2× in this environment (cells
        // have 2–4 neighbours).
        assert!(bf > 2.0 * pred, "bf={bf} pred={pred}");
        assert!(r.useful_cell_seconds > 0.0);
    }
}
