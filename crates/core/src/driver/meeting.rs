//! The Figure 5 experiment: meeting-room handoffs under three
//! reservation algorithms.
//!
//! §7.1: "We simulated the following three advanced reservation
//! algorithms for the measured handoffs: (a) brute force reservation in
//! the neighborhood of a user, (b) advance reservation based on
//! aggregation of previous handoffs from a cell to its neighbors, and (c)
//! the meeting room algorithm … cell throughput 1.6 Mbps, each user opens
//! one connection of either 16 Kbps (75%) or 64 Kbps (25%). For the 35
//! student class, the offered load was 59%; brute force registered 2
//! connection drops, the other two none. For the 55 student class (94%
//! load): brute force 7, aggregation 4, meeting room 0."
//!
//! The driver replays an `arm-mobility` meeting trace through the full
//! [`ResourceManager`], one connection per user from the §7.1 mix.

use std::collections::BTreeMap;

use arm_mobility::models::meeting::{self, MeetingEnv, MeetingParams};
use arm_mobility::{MobilityTrace, WorkloadMix};
use arm_net::ids::{ConnId, PortableId};
use arm_reservation::meeting::{BookingCalendar, Meeting};
use arm_sim::stats::TimeSeries;
use arm_sim::{SimDuration, SimRng, SimTime};

use crate::manager::{ManagerConfig, ResourceManager};
use crate::strategy::Strategy;

/// Everything Figure 5 plots, for one (algorithm, class-size) run.
#[derive(Clone, Debug)]
pub struct MeetingRunResult {
    /// Strategy label.
    pub strategy: String,
    /// Number of attendees.
    pub attendees: usize,
    /// Offered load against the 1.6 Mbps classroom medium.
    pub offered_load: f64,
    /// Attendee connections dropped while entering or leaving the
    /// classroom — the count the paper reports (drops caused by wasteful
    /// walk-by reservations inside the room).
    pub drops: u64,
    /// Walk-by connections dropped in the corridor (collateral damage of
    /// over-reservation; not part of the paper's headline count).
    pub walkby_drops: u64,
    /// New connections blocked outright.
    pub blocks: u64,
    /// Fig 5.a / 5.c / 5.b+d: handoffs into the classroom, out of the
    /// classroom, and total activity at the corridor outside, per minute.
    pub into_room: TimeSeries,
    /// Handoffs out of the classroom per minute.
    pub out_of_room: TimeSeries,
    /// Total handoff arrivals at the corridor cell per minute.
    pub corridor_activity: TimeSeries,
    /// The simulated span the series cover. Quiet tail minutes record no
    /// samples, so plot the series with
    /// [`values_padded`](TimeSeries::values_padded)`(SimTime::ZERO + span)`
    /// to keep the time axis comparable across runs.
    pub span: SimDuration,
}

/// Run one strategy against one class size.
pub fn run(strategy: Strategy, attendees: usize, seed: u64) -> MeetingRunResult {
    let menv = MeetingEnv::build();
    let params = MeetingParams {
        attendees,
        ..Default::default()
    };
    let mut rng = SimRng::new(seed);
    let trace = meeting::generate(&menv, &params, &mut rng);
    run_trace(strategy, &menv, &params, &trace, &mut rng.split("workload"))
}

/// Run one strategy against a pre-generated trace (so every strategy sees
/// the *same* handoffs, as in the paper).
pub fn run_trace(
    strategy: Strategy,
    menv: &MeetingEnv,
    params: &MeetingParams,
    trace: &MobilityTrace,
    rng: &mut SimRng,
) -> MeetingRunResult {
    let net = menv.env.build_network(1600.0, 0.0, 100_000.0);
    let cfg = ManagerConfig {
        strategy,
        slot: SimDuration::from_mins(1),
        ..Default::default()
    };
    let mut mgr = ResourceManager::new(menv.env.clone(), net, cfg);
    // The meeting-room algorithm knows the booking.
    let mut cal = BookingCalendar::new();
    cal.book(Meeting {
        t_start: params.t_start,
        t_end: params.t_start + params.duration,
        expected: params.attendees as u32,
    });
    mgr.set_calendar(menv.m, cal);

    // Everyone gets one connection from the §7.1 mix. Attendees draw
    // from an exact 75%/25% deck (the paper's "each user opens one
    // connection of either 16 Kbps (75%) or 64 Kbps (25%)"); walk-by
    // pedestrians sample freely. Rates are fixed up front so every
    // strategy assigns identical rates to identical users.
    let mix = WorkloadMix::paper71();
    let mut rates: BTreeMap<PortableId, arm_net::flowspec::QosRequest> = BTreeMap::new();
    let attendees: Vec<PortableId> = trace
        .portables()
        .into_iter()
        .filter(|p| p.0 >= meeting::ATTENDEE_BASE && p.0 < meeting::WALKBY_BASE)
        .collect();
    let n_small = (attendees.len() as f64 * 0.75).round() as usize;
    let mut deck: Vec<arm_net::flowspec::QosRequest> = Vec::new();
    for i in 0..attendees.len() {
        deck.push(if i < n_small {
            mix.entries[0].1
        } else {
            mix.entries[1].1
        });
    }
    rng.shuffle(&mut deck);
    for (p, q) in attendees.iter().zip(deck) {
        rates.insert(*p, q);
    }
    for p in trace.portables() {
        rates.entry(p).or_insert_with(|| mix.sample(rng));
    }

    // A portable's connection ends when it leaves the modelled area —
    // i.e. at its final trace event (the corridor continues beyond the
    // model; we stop accounting for the user there).
    let mut last_event: BTreeMap<PortableId, SimTime> = BTreeMap::new();
    for ev in trace.events() {
        last_event.insert(ev.portable, ev.time);
    }

    let is_attendee = |p: PortableId| p.0 >= meeting::ATTENDEE_BASE && p.0 < meeting::WALKBY_BASE;
    let mut open_conns: BTreeMap<PortableId, ConnId> = BTreeMap::new();
    let mut dropped_conns = 0u64;
    let mut walkby_drops = 0u64;
    let mut next_slot = SimTime::ZERO + SimDuration::from_mins(1);
    for ev in trace.events() {
        while ev.time >= next_slot {
            mgr.slot_tick(next_slot);
            next_slot += SimDuration::from_mins(1);
        }
        match ev.from {
            None => {
                mgr.portable_appears(ev.portable, ev.to, ev.time);
                let qos = rates[&ev.portable];
                if let Ok(id) = mgr.request_connection(ev.portable, qos, ev.time) {
                    open_conns.insert(ev.portable, id);
                }
            }
            Some(_) => {
                let dropped = mgr.portable_moved(ev.portable, ev.to, ev.time);
                for id in dropped {
                    if open_conns.get(&ev.portable).is_some_and(|c| *c == id) {
                        open_conns.remove(&ev.portable);
                        if is_attendee(ev.portable) {
                            dropped_conns += 1;
                        } else {
                            walkby_drops += 1;
                        }
                    }
                }
            }
        }
        // Off the modelled floor: tear the connection down normally.
        if last_event[&ev.portable] == ev.time {
            if let Some(id) = open_conns.remove(&ev.portable) {
                mgr.terminate(id, ev.time);
            }
        }
    }
    let into_room = trace.arrivals_series(menv.m, SimDuration::from_mins(1));
    let out_of_room = trace.departures_series(menv.m, SimDuration::from_mins(1));
    let corridor_activity = trace.arrivals_series(menv.x, SimDuration::from_mins(1));
    MeetingRunResult {
        strategy: strategy.label(),
        attendees: params.attendees,
        offered_load: mix.offered_load(params.attendees, 1600.0),
        drops: dropped_conns,
        walkby_drops,
        blocks: mgr.metrics.blocked.get(),
        into_room,
        out_of_room,
        corridor_activity,
        span: params.span,
    }
}

/// Run the paper's three algorithms on one shared trace; returns results
/// in the order brute-force, aggregate, meeting-room.
pub fn compare(attendees: usize, seed: u64) -> Vec<MeetingRunResult> {
    let menv = MeetingEnv::build();
    let params = MeetingParams {
        attendees,
        ..Default::default()
    };
    let mut rng = SimRng::new(seed);
    let trace = meeting::generate(&menv, &params, &mut rng);
    [Strategy::BruteForce, Strategy::Aggregate, Strategy::Paper]
        .into_iter()
        .map(|s| {
            run_trace(
                s,
                &menv,
                &params,
                &trace,
                &mut SimRng::new(seed).split("workload"),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lecture_35_shape_matches_the_paper() {
        // Paper: brute force 2 drops, aggregate 0, meeting room 0. The
        // exact per-algorithm counts are single-draw artefacts (our draw
        // differs, and attendee drops number in the low single digits);
        // the reproducible claims are that the meeting algorithm is
        // perfect and that brute force loses more victims overall
        // (attendees + walk-bys) than aggregation.
        let results = compare(35, 42);
        let (bf, ag, mr) = (&results[0], &results[1], &results[2]);
        assert_eq!(mr.strategy, "paper");
        assert_eq!(mr.drops, 0, "meeting algorithm must not drop");
        assert_eq!(mr.walkby_drops, 0, "meeting algorithm spares walk-bys");
        assert!(bf.drops > 0, "brute force drops even at modest load");
        assert!(
            bf.drops + bf.walkby_drops > ag.drops + ag.walkby_drops,
            "brute force ({} + {}) must hurt more than aggregate ({} + {})",
            bf.drops,
            bf.walkby_drops,
            ag.drops,
            ag.walkby_drops
        );
        // All attendees entered the room.
        assert_eq!(mr.into_room.total(), 35.0);
    }

    #[test]
    fn lab_55_ordering_matches_the_paper() {
        // Paper: brute force 7 > aggregation 4 > meeting room 0. The
        // exact counts depend on the draw; the reproducible claims are
        // the meeting algorithm's zero and the total-victim ordering
        // (attendee drops alone are single digits, where a draw can tie
        // brute force with aggregation).
        let results = compare(55, 42);
        let (bf, ag, mr) = (&results[0], &results[1], &results[2]);
        assert_eq!(mr.drops, 0, "meeting room drops: {}", mr.drops);
        assert_eq!(mr.walkby_drops, 0, "meeting room walk-by drops");
        assert!(
            bf.drops + bf.walkby_drops > ag.drops + ag.walkby_drops,
            "brute force ({} + {}) must hurt more than aggregate ({} + {})",
            bf.drops,
            bf.walkby_drops,
            ag.drops,
            ag.walkby_drops
        );
        assert!(ag.drops > 0, "at 96% load aggregate also drops");
    }

    #[test]
    fn offered_loads_bracket_the_paper() {
        let results = compare(35, 1);
        assert!((results[0].offered_load - 0.6125).abs() < 1e-9);
        let results = compare(55, 1);
        assert!((results[0].offered_load - 0.9625).abs() < 1e-9);
    }

    #[test]
    fn corridor_activity_dominates_room_series() {
        let results = compare(35, 7);
        let r = &results[2];
        assert!(r.corridor_activity.total() > r.into_room.total());
        // The room's arrival peak sits in the 10-minute window around the
        // class start (minute 20–32).
        let peak = r.into_room.peak_slot().expect("arrivals exist");
        assert!((19..=32).contains(&peak), "peak at minute {peak}");
    }
}
