//! The Figure 6 experiment: performance of the default (probabilistic)
//! reservation algorithm.
//!
//! Two identical cells of capacity 40 carry two connection types (type 1:
//! b=1, λ=30, 1/μ=0.2, h=0.7; type 2: b=4, λ=1, 1/μ=0.25, h=0.7). New
//! connections pass the §6.3 look-ahead admission test (window `T`,
//! target `P_QOS`); handoffs are admitted whenever the raw capacity
//! fits. Sweeping `P_QOS` for a family of `T` values produces the
//! `P_d`-vs-`P_b` trade-off curves of Figure 6; the static-reservation
//! baseline reserves a fixed slice instead.
//!
//! The driver is a dedicated birth–death simulation on `arm-sim` (the
//! full ledger machinery adds nothing here — there is one link per cell
//! and all rates are fixed), which lets a whole curve family run in
//! milliseconds.

use arm_mobility::workload::ConnTypeSpec;
use arm_reservation::probabilistic::{ProbabilisticConfig, ProbabilisticReservation, TypeState};
use arm_sim::engine::{Ctx, Model};
use arm_sim::{Engine, SimDuration, SimRng, SimTime};

/// Which admission policy guards new connections.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AdmissionPolicy {
    /// §6.3: admit while the look-ahead non-blocking probability stays
    /// above `1 − P_QOS`.
    Probabilistic {
        /// Look-ahead window `T` (time units).
        window_t: f64,
        /// Target handoff-drop probability.
        p_qos: f64,
    },
    /// Reserve a fixed bandwidth slice for handoffs; admit new
    /// connections only into the remainder.
    StaticReservation {
        /// Reserved bandwidth (abstract units out of the capacity).
        reserved: f64,
    },
    /// No protection: admit whenever capacity fits.
    None,
}

/// One simulation's outcome.
#[derive(Clone, Copy, Debug)]
pub struct Fig6Point {
    /// New-connection blocking probability.
    pub p_b: f64,
    /// Handoff dropping probability.
    pub p_d: f64,
    /// Offered new connections.
    pub offered: u64,
    /// Handoff attempts.
    pub handoffs: u64,
}

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Fig6Params {
    /// Cell capacity `B_c` (both cells; paper: 40).
    pub capacity: f64,
    /// Virtual seconds per model time unit.
    pub time_unit: SimDuration,
    /// Simulated span in model time units.
    pub span_units: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig6Params {
    fn default() -> Self {
        Fig6Params {
            capacity: 40.0,
            time_unit: SimDuration::from_secs(1),
            span_units: 2000.0,
            seed: 1,
        }
    }
}

/// Events of the birth–death model.
#[derive(Clone, Copy, Debug)]
enum Ev {
    /// A new connection of `type_idx` arrives at `cell` (0 or 1).
    Arrive { cell: usize, type_idx: usize },
    /// Connection `serial` (if still alive) leaves its cell.
    Depart { serial: u64 },
}

/// A live connection.
#[derive(Clone, Copy, Debug)]
struct Live {
    cell: usize,
    type_idx: usize,
}

struct Fig6Model {
    types: Vec<ConnTypeSpec>,
    policy: AdmissionPolicy,
    capacity: f64,
    time_unit: SimDuration,
    end: SimTime,
    rng: SimRng,
    /// Bandwidth in use per cell.
    used: [f64; 2],
    /// Live connection count per (cell, type).
    counts: [[u32; 2]; 2],
    live: std::collections::BTreeMap<u64, Live>,
    next_serial: u64,
    offered: u64,
    blocked: u64,
    handoff_attempts: u64,
    dropped: u64,
}

impl Fig6Model {
    fn admit_new(&self, cell: usize, type_idx: usize) -> bool {
        let b = self.types[type_idx].bandwidth;
        match self.policy {
            AdmissionPolicy::None => self.used[cell] + b <= self.capacity + 1e-9,
            AdmissionPolicy::StaticReservation { reserved } => {
                self.used[cell] + b <= self.capacity - reserved + 1e-9
            }
            AdmissionPolicy::Probabilistic { window_t, p_qos } => {
                if self.used[cell] + b > self.capacity + 1e-9 {
                    return false;
                }
                let solver = ProbabilisticReservation::new(ProbabilisticConfig {
                    window_t,
                    p_qos,
                    capacity: self.capacity,
                    handoff_prob: self.types[type_idx].handoff_prob,
                    quantum: 1.0,
                });
                let other = 1 - cell;
                let states: Vec<TypeState> = self
                    .types
                    .iter()
                    .enumerate()
                    .map(|(i, ty)| TypeState {
                        b_min: ty.bandwidth,
                        mu: ty.mu(),
                        n_current: self.counts[cell][i],
                        s_neighbor: self.counts[other][i],
                    })
                    .collect();
                solver.admit_new(&states, type_idx)
            }
        }
    }

    fn admit_handoff(&self, cell: usize, type_idx: usize) -> bool {
        // Handoffs are the protected class: they may use the full
        // capacity, including anything reserved.
        let b = self.types[type_idx].bandwidth;
        self.used[cell] + b <= self.capacity + 1e-9
    }

    fn place(&mut self, cell: usize, type_idx: usize, ctx: &mut Ctx<'_, Ev>) {
        let serial = self.next_serial;
        self.next_serial += 1;
        self.used[cell] += self.types[type_idx].bandwidth;
        self.counts[cell][type_idx] += 1;
        self.live.insert(serial, Live { cell, type_idx });
        let holding = self.rng.exp_duration(SimDuration::from_secs_f64(
            self.types[type_idx].mean_holding * self.time_unit.as_secs_f64(),
        ));
        ctx.schedule_after(holding, Ev::Depart { serial });
    }

    fn remove(&mut self, serial: u64) -> Option<Live> {
        let live = self.live.remove(&serial)?;
        self.used[live.cell] -= self.types[live.type_idx].bandwidth;
        self.counts[live.cell][live.type_idx] -= 1;
        Some(live)
    }
}

impl Model for Fig6Model {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
        if ctx.now() > self.end {
            return; // drain without acting
        }
        match ev {
            Ev::Arrive { cell, type_idx } => {
                self.offered += 1;
                if self.admit_new(cell, type_idx) {
                    self.place(cell, type_idx, ctx);
                } else {
                    self.blocked += 1;
                }
                // Next arrival of this stream.
                let rate = self.types[type_idx].arrival_rate;
                let gap = self.rng.exp_duration(SimDuration::from_secs_f64(
                    self.time_unit.as_secs_f64() / rate,
                ));
                ctx.schedule_after(gap, Ev::Arrive { cell, type_idx });
            }
            Ev::Depart { serial } => {
                let Some(live) = self.remove(serial) else {
                    return;
                };
                // With probability h the connection hands off to the
                // neighbour cell; otherwise it terminates.
                if self.rng.chance(self.types[live.type_idx].handoff_prob) {
                    self.handoff_attempts += 1;
                    let target = 1 - live.cell;
                    if self.admit_handoff(target, live.type_idx) {
                        self.place(target, live.type_idx, ctx);
                    } else {
                        self.dropped += 1;
                    }
                }
            }
        }
    }
}

/// Run one Figure 6 point.
pub fn run(policy: AdmissionPolicy, params: Fig6Params) -> Fig6Point {
    let types = ConnTypeSpec::fig6_types();
    let end = SimTime::ZERO
        + SimDuration::from_secs_f64(params.span_units * params.time_unit.as_secs_f64());
    let model = Fig6Model {
        types: types.clone(),
        policy,
        capacity: params.capacity,
        time_unit: params.time_unit,
        end,
        rng: SimRng::new(params.seed).split("fig6"),
        used: [0.0; 2],
        counts: [[0; 2]; 2],
        live: Default::default(),
        next_serial: 0,
        offered: 0,
        blocked: 0,
        handoff_attempts: 0,
        dropped: 0,
    };
    let mut engine = Engine::new(model);
    for cell in 0..2 {
        for type_idx in 0..types.len() {
            engine.schedule_at(SimTime::ZERO, Ev::Arrive { cell, type_idx });
        }
    }
    engine.run_until(end);
    let m = engine.model();
    Fig6Point {
        p_b: m.blocked as f64 / m.offered.max(1) as f64,
        p_d: m.dropped as f64 / m.handoff_attempts.max(1) as f64,
        offered: m.offered,
        handoffs: m.handoff_attempts,
    }
}

/// Sweep `P_QOS` for one window `T`, producing one Figure 6 curve.
pub fn curve(window_t: f64, p_qos_values: &[f64], params: Fig6Params) -> Vec<(f64, Fig6Point)> {
    p_qos_values
        .iter()
        .map(|p_qos| {
            (
                *p_qos,
                run(
                    AdmissionPolicy::Probabilistic {
                        window_t,
                        p_qos: *p_qos,
                    },
                    params,
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Fig6Params {
        Fig6Params {
            span_units: 400.0,
            ..Default::default()
        }
    }

    #[test]
    fn unprotected_system_runs_hot() {
        let p = run(AdmissionPolicy::None, quick());
        // λ/μ per cell: type 1 offers 30×0.2 = 6 erlangs of bandwidth 1
        // plus handoffs; type 2 offers 1 erlang of bandwidth 4 — the cell
        // mostly fits, so blocking is modest but handoff drops happen.
        assert!(p.offered > 10_000, "offered={}", p.offered);
        assert!(p.handoffs > 1000);
        assert!(p.p_b < 0.2);
    }

    #[test]
    fn tighter_p_qos_trades_blocking_for_dropping() {
        let params = quick();
        let loose = run(
            AdmissionPolicy::Probabilistic {
                window_t: 0.05,
                p_qos: 0.9,
            },
            params,
        );
        let tight = run(
            AdmissionPolicy::Probabilistic {
                window_t: 0.05,
                p_qos: 0.001,
            },
            params,
        );
        assert!(
            tight.p_b > loose.p_b,
            "tight target must block more: {} vs {}",
            tight.p_b,
            loose.p_b
        );
        assert!(
            tight.p_d <= loose.p_d + 1e-3,
            "tight target must not drop more: {} vs {}",
            tight.p_d,
            loose.p_d
        );
    }

    #[test]
    fn probabilistic_beats_static_at_comparable_blocking() {
        // The paper's claim ([12]): the look-ahead algorithm outperforms
        // static reservation. Compare at similar P_b by picking a static
        // slice and a P_QOS that land close together.
        let params = Fig6Params {
            span_units: 1500.0,
            ..Default::default()
        };
        let stat = run(AdmissionPolicy::StaticReservation { reserved: 6.0 }, params);
        // Find a probabilistic point with P_b no worse than static's. The
        // grid must reach the tight end (P_QOS ≈ 0.002): static with a
        // 6-unit slice blocks ~2%, and only comparably tight look-ahead
        // targets land in that blocking regime.
        let mut best: Option<Fig6Point> = None;
        for p_qos in [0.05, 0.02, 0.01, 0.005, 0.002, 0.001] {
            let p = run(
                AdmissionPolicy::Probabilistic {
                    window_t: 0.05,
                    p_qos,
                },
                params,
            );
            if p.p_b <= stat.p_b && best.map_or(true, |b| p.p_d < b.p_d) {
                best = Some(p);
            }
        }
        let best = best.expect("some probabilistic point blocks no more than static");
        assert!(
            best.p_d <= stat.p_d,
            "probabilistic P_d {} should not exceed static P_d {} at no more blocking",
            best.p_d,
            stat.p_d
        );
    }

    #[test]
    fn determinism() {
        let a = run(AdmissionPolicy::None, quick());
        let b = run(AdmissionPolicy::None, quick());
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.handoffs, b.handoffs);
        assert!((a.p_b - b.p_b).abs() < 1e-15);
    }

    #[test]
    fn curve_is_a_tradeoff_frontier() {
        let pts = curve(0.05, &[0.001, 0.01, 0.05, 0.2, 0.8], quick());
        // P_b should broadly decrease as P_QOS loosens.
        let first = pts.first().expect("non-empty").1;
        let last = pts.last().expect("non-empty").1;
        assert!(first.p_b >= last.p_b, "{} vs {}", first.p_b, last.p_b);
    }
}
