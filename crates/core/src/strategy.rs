//! Which advance-reservation scheme the manager runs.

use serde::{Deserialize, Serialize};

/// The reservation strategy under test.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// No advance reservation at all (handoffs compete for free capacity).
    None,
    /// The paper's algorithm: three-level prediction + per-class policies
    /// (meeting calendar, cafeteria least-squares, default one-step) +
    /// the `B_dyn` pool.
    Paper,
    /// Brute force: reserve every mobile's floors in *all* neighbours.
    BruteForce,
    /// Aggregate: spread every mobile's floors over the neighbours by the
    /// cell profile's transition probabilities.
    Aggregate,
    /// Static: a fixed fraction of each cell's capacity, always.
    StaticFraction(f64),
}

impl Strategy {
    /// Short label for report rows.
    pub fn label(&self) -> String {
        match self {
            Strategy::None => "none".into(),
            Strategy::Paper => "paper".into(),
            Strategy::BruteForce => "brute-force".into(),
            Strategy::Aggregate => "aggregate".into(),
            Strategy::StaticFraction(f) => format!("static-{:.0}%", f * 100.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Strategy::Paper.label(), "paper");
        assert_eq!(Strategy::BruteForce.label(), "brute-force");
        assert_eq!(Strategy::StaticFraction(0.1).label(), "static-10%");
    }
}
