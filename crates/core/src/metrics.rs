//! Run metrics: the quantities the paper reports.

use arm_net::ids::CellId;
use arm_obs::MetricsSummary;
use arm_sim::stats::{Counter, TimeSeries};
use arm_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Counters and series collected over one simulation run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Metrics {
    /// New-connection requests offered.
    pub requests: Counter,
    /// New-connection requests rejected (`P_b` numerator).
    pub blocked: Counter,
    /// Connections that completed normally.
    pub completed: Counter,
    /// Handoff attempts (one per live connection per cell change).
    pub handoff_attempts: Counter,
    /// Handoffs that found resources (possibly via a claim or pool).
    pub handoff_successes: Counter,
    /// Connections dropped mid-life because a handoff failed (`P_d`
    /// numerator).
    pub dropped: Counter,
    /// Handoffs satisfied by consuming an advance claim or pool rather
    /// than free capacity.
    pub claims_consumed: Counter,
    /// Handoff arrivals per cell per slot (the Figure 2/5 series).
    arrivals: std::collections::BTreeMap<CellId, TimeSeries>,
    slot: SimDuration,
}

impl Metrics {
    /// Fresh metrics with the given series slot width.
    pub fn new(slot: SimDuration) -> Self {
        Metrics {
            requests: Counter::new(),
            blocked: Counter::new(),
            completed: Counter::new(),
            handoff_attempts: Counter::new(),
            handoff_successes: Counter::new(),
            dropped: Counter::new(),
            claims_consumed: Counter::new(),
            arrivals: Default::default(),
            slot,
        }
    }

    /// New-connection blocking probability `P_b`.
    pub fn p_b(&self) -> f64 {
        self.blocked.ratio_of(&self.requests)
    }

    /// Handoff dropping probability `P_d` — the fraction of handoff
    /// attempts that killed their connection.
    pub fn p_d(&self) -> f64 {
        self.dropped.ratio_of(&self.handoff_attempts)
    }

    /// Record a handoff arrival into `cell` for the activity series.
    pub fn record_arrival(&mut self, cell: CellId, at: SimTime) {
        self.arrivals
            .entry(cell)
            .or_insert_with(|| TimeSeries::new(self.slot))
            .incr(at);
    }

    /// The arrival series of one cell, if any arrivals were recorded.
    pub fn arrivals(&self, cell: CellId) -> Option<&TimeSeries> {
        self.arrivals.get(&cell)
    }

    /// These metrics as the run-report summary section.
    pub fn summary(&self) -> MetricsSummary {
        MetricsSummary {
            requests: self.requests.get(),
            blocked: self.blocked.get(),
            completed: self.completed.get(),
            handoff_attempts: self.handoff_attempts.get(),
            handoff_successes: self.handoff_successes.get(),
            dropped: self.dropped.get(),
            claims_consumed: self.claims_consumed.get(),
            p_b: self.p_b(),
            p_d: self.p_d(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities() {
        let mut m = Metrics::new(SimDuration::from_mins(1));
        m.requests.add(10);
        m.blocked.add(2);
        m.handoff_attempts.add(50);
        m.dropped.add(5);
        assert!((m.p_b() - 0.2).abs() < 1e-12);
        assert!((m.p_d() - 0.1).abs() < 1e-12);
        // Empty metrics report zero, not NaN.
        let empty = Metrics::new(SimDuration::from_mins(1));
        assert_eq!(empty.p_b(), 0.0);
        assert_eq!(empty.p_d(), 0.0);
    }

    #[test]
    fn summary_mirrors_counters() {
        let mut m = Metrics::new(SimDuration::from_mins(1));
        m.requests.add(10);
        m.blocked.add(2);
        m.completed.add(7);
        m.handoff_attempts.add(50);
        m.handoff_successes.add(45);
        m.dropped.add(5);
        m.claims_consumed.add(3);
        let s = m.summary();
        assert_eq!(s.requests, 10);
        assert_eq!(s.blocked, 2);
        assert_eq!(s.completed, 7);
        assert_eq!(s.handoff_attempts, 50);
        assert_eq!(s.handoff_successes, 45);
        assert_eq!(s.dropped, 5);
        assert_eq!(s.claims_consumed, 3);
        assert!((s.p_b - m.p_b()).abs() < 1e-15);
        assert!((s.p_d - m.p_d()).abs() < 1e-15);
    }

    #[test]
    fn arrival_series_per_cell() {
        let mut m = Metrics::new(SimDuration::from_mins(1));
        m.record_arrival(CellId(3), SimTime::from_secs(30));
        m.record_arrival(CellId(3), SimTime::from_secs(90));
        assert_eq!(m.arrivals(CellId(3)).unwrap().values(), &[1.0, 1.0]);
        assert!(m.arrivals(CellId(9)).is_none());
    }
}
