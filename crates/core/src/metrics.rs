//! Run metrics: the quantities the paper reports.

use arm_net::ids::CellId;
use arm_sim::stats::{Counter, TimeSeries};
use arm_sim::{SimDuration, SimTime};

/// Counters and series collected over one simulation run.
#[derive(Debug)]
pub struct Metrics {
    /// New-connection requests offered.
    pub requests: Counter,
    /// New-connection requests rejected (`P_b` numerator).
    pub blocked: Counter,
    /// Connections that completed normally.
    pub completed: Counter,
    /// Handoff attempts (one per live connection per cell change).
    pub handoff_attempts: Counter,
    /// Handoffs that found resources (possibly via a claim or pool).
    pub handoff_successes: Counter,
    /// Connections dropped mid-life because a handoff failed (`P_d`
    /// numerator).
    pub dropped: Counter,
    /// Handoffs satisfied by consuming an advance claim or pool rather
    /// than free capacity.
    pub claims_consumed: Counter,
    /// Handoff arrivals per cell per slot (the Figure 2/5 series).
    arrivals: std::collections::BTreeMap<CellId, TimeSeries>,
    slot: SimDuration,
}

impl Metrics {
    /// Fresh metrics with the given series slot width.
    pub fn new(slot: SimDuration) -> Self {
        Metrics {
            requests: Counter::new(),
            blocked: Counter::new(),
            completed: Counter::new(),
            handoff_attempts: Counter::new(),
            handoff_successes: Counter::new(),
            dropped: Counter::new(),
            claims_consumed: Counter::new(),
            arrivals: Default::default(),
            slot,
        }
    }

    /// New-connection blocking probability `P_b`.
    pub fn p_b(&self) -> f64 {
        self.blocked.ratio_of(&self.requests)
    }

    /// Handoff dropping probability `P_d` — the fraction of handoff
    /// attempts that killed their connection.
    pub fn p_d(&self) -> f64 {
        self.dropped.ratio_of(&self.handoff_attempts)
    }

    /// Record a handoff arrival into `cell` for the activity series.
    pub fn record_arrival(&mut self, cell: CellId, at: SimTime) {
        self.arrivals
            .entry(cell)
            .or_insert_with(|| TimeSeries::new(self.slot))
            .incr(at);
    }

    /// The arrival series of one cell, if any arrivals were recorded.
    pub fn arrivals(&self, cell: CellId) -> Option<&TimeSeries> {
        self.arrivals.get(&cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities() {
        let mut m = Metrics::new(SimDuration::from_mins(1));
        m.requests.add(10);
        m.blocked.add(2);
        m.handoff_attempts.add(50);
        m.dropped.add(5);
        assert!((m.p_b() - 0.2).abs() < 1e-12);
        assert!((m.p_d() - 0.1).abs() < 1e-12);
        // Empty metrics report zero, not NaN.
        let empty = Metrics::new(SimDuration::from_mins(1));
        assert_eq!(empty.p_b(), 0.0);
        assert_eq!(empty.p_d(), 0.0);
    }

    #[test]
    fn arrival_series_per_cell() {
        let mut m = Metrics::new(SimDuration::from_mins(1));
        m.record_arrival(CellId(3), SimTime::from_secs(30));
        m.record_arrival(CellId(3), SimTime::from_secs(90));
        assert_eq!(m.arrivals(CellId(3)).unwrap().values(), &[1.0, 1.0]);
        assert!(m.arrivals(CellId(9)).is_none());
    }
}
