//! Declarative scenarios: a JSON-serialisable description of an
//! environment, a mobility pattern, a workload, and a manager
//! configuration, plus a one-call runner.
//!
//! This is the downstream-user entry point: describe an experiment in a
//! file, run it with `cargo run -p arm-bench --bin run_scenario -- my.json`,
//! get the paper's metrics back. Every example and experiment in this
//! repository can be expressed as a [`Scenario`].

use serde::{Deserialize, Serialize};

use arm_mobility::environment::{office_wing, Figure4, IndoorEnvironment};
use arm_mobility::models::meeting::{self, MeetingEnv, MeetingParams};
use arm_mobility::models::office_case::{self, OfficeCaseParams};
use arm_mobility::models::random_walk::{self, RandomWalkParams};
use arm_mobility::MobilityTrace;
use arm_sim::{SimDuration, SimRng};

use crate::error::ControlError;
use crate::manager::{ManagerConfig, ResourceManager};
use crate::strategy::Strategy;

/// Which floor plan to build.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub enum EnvSpec {
    /// The paper's Figure 4 plan (offices A/B, corridors C–G).
    Figure4,
    /// A parametric office wing with `offices` offices plus a meeting
    /// room, cafeteria and default lounge.
    OfficeWing {
        /// Number of offices (and corridor segments).
        offices: usize,
    },
    /// The Figure 5 meeting scenario plan (corridor W–X–Y, classroom M).
    Meeting,
}

/// Which mobility generator to run.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub enum MobilitySpec {
    /// Memoryless wandering.
    RandomWalk {
        /// Wanderer count.
        population: usize,
        /// Mean per-cell dwell, seconds.
        mean_dwell_secs: u64,
        /// Simulated span, minutes.
        span_mins: u64,
    },
    /// The §7.1 workweek on Figure 4 (requires `EnvSpec::Figure4`).
    OfficeCase,
    /// The Figure 5 meeting (requires `EnvSpec::Meeting`).
    Meeting {
        /// Attendance.
        attendees: usize,
    },
}

/// Which per-user workload to attach.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub enum WorkloadSpec {
    /// The §7.1 mix: 16 kbps (75%) / 64 kbps (25%), one per user.
    Paper71,
    /// One fixed-rate connection per user.
    Fixed {
        /// Rate in kbps.
        kbps: f64,
    },
    /// No connections (mobility/prediction only).
    None,
}

/// A complete experiment description.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Scenario {
    /// Report label.
    pub name: String,
    /// Floor plan.
    pub environment: EnvSpec,
    /// Movement pattern.
    pub mobility: MobilitySpec,
    /// Per-user connections.
    pub workload: WorkloadSpec,
    /// Advance-reservation strategy under test.
    pub strategy: Strategy,
    /// Shared-medium capacity per cell (kbps).
    pub cell_throughput_kbps: f64,
    /// Wired backbone capacity (kbps).
    pub backbone_kbps: f64,
    /// Wireless per-hop packet error probability.
    pub wireless_error: f64,
    /// Static/mobile threshold `T_th` (seconds).
    pub t_th_secs: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Scenario {
    /// A ready-to-edit sample (the Figure 5 lecture).
    pub fn sample() -> Self {
        Scenario {
            name: "lecture-of-35".into(),
            environment: EnvSpec::Meeting,
            mobility: MobilitySpec::Meeting { attendees: 35 },
            workload: WorkloadSpec::Paper71,
            strategy: Strategy::Paper,
            cell_throughput_kbps: 1600.0,
            backbone_kbps: 100_000.0,
            wireless_error: 0.0,
            t_th_secs: 300,
            seed: 42,
        }
    }
}

/// What a run produced.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario label.
    pub name: String,
    /// Strategy label.
    pub strategy: String,
    /// Connections requested.
    pub requests: u64,
    /// Requests blocked (`P_b` numerator).
    pub blocked: u64,
    /// Handoff attempts.
    pub handoff_attempts: u64,
    /// Connections dropped mid-life (`P_d` numerator).
    pub dropped: u64,
    /// Blocking probability.
    pub p_b: f64,
    /// Handoff dropping probability.
    pub p_d: f64,
    /// Handoffs satisfied from an advance claim or pool.
    pub claims_consumed: u64,
    /// Movement events replayed.
    pub moves: u64,
}

/// Build and run a scenario end to end.
///
/// Delegates to [`crate::chaos::run_with_faults`] with the empty fault
/// schedule — the fault-free path is the same code, so a chaos run with
/// no faults produces bit-identical reports.
pub fn run(sc: &Scenario) -> Result<ScenarioReport, ControlError> {
    Ok(crate::chaos::run_with_faults(sc, &arm_sim::FaultSchedule::empty())?.report)
}

/// Build the manager (with its environment, network, and calendar) and
/// the mobility trace a scenario describes.
///
/// Public so long-running drivers (`arm-server`) can construct the same
/// validated manager the batch runners use and then feed it events from
/// elsewhere — the returned trace is the scenario's *suggested* workload
/// and may be ignored, replayed, or converted to a server event stream.
pub fn build_manager(sc: &Scenario) -> Result<(ResourceManager, MobilityTrace), ControlError> {
    let (env, trace) = build_env_and_trace(sc)?;
    let net = env.build_network(sc.cell_throughput_kbps, sc.wireless_error, sc.backbone_kbps);
    let cfg = ManagerConfig {
        strategy: sc.strategy,
        t_th: SimDuration::from_secs(sc.t_th_secs),
        ..Default::default()
    };
    let mut mgr = ResourceManager::new(env, net, cfg);
    // Meeting scenarios get the booking calendar.
    if let (EnvSpec::Meeting, MobilitySpec::Meeting { attendees }) = (&sc.environment, &sc.mobility)
    {
        let params = MeetingParams {
            attendees: *attendees,
            ..Default::default()
        };
        let mut cal = arm_reservation::meeting::BookingCalendar::new();
        cal.book(arm_reservation::meeting::Meeting {
            t_start: params.t_start,
            t_end: params.t_start + params.duration,
            expected: *attendees as u32,
        });
        // The classroom is cell "M".
        let menv = MeetingEnv::build();
        mgr.set_calendar(menv.m, cal);
    }
    Ok((mgr, trace))
}

fn build_env_and_trace(sc: &Scenario) -> Result<(IndoorEnvironment, MobilityTrace), ControlError> {
    validate(sc)?;
    let mut rng = SimRng::new(sc.seed);
    match (&sc.environment, &sc.mobility) {
        (EnvSpec::Figure4, MobilitySpec::OfficeCase) => {
            let f4 = Figure4::build();
            let trace = office_case::generate(&f4, &OfficeCaseParams::default(), &mut rng);
            Ok((f4.env, trace))
        }
        (EnvSpec::Meeting, MobilitySpec::Meeting { attendees }) => {
            let menv = MeetingEnv::build();
            let params = MeetingParams {
                attendees: *attendees,
                ..Default::default()
            };
            let trace = meeting::generate(&menv, &params, &mut rng);
            Ok((menv.env, trace))
        }
        (
            env_spec,
            MobilitySpec::RandomWalk {
                population,
                mean_dwell_secs,
                span_mins,
            },
        ) => {
            let env = match env_spec {
                EnvSpec::Figure4 => Figure4::build().env,
                EnvSpec::OfficeWing { offices } => office_wing(*offices),
                EnvSpec::Meeting => MeetingEnv::build().env,
            };
            let params = RandomWalkParams {
                population: *population,
                mean_dwell: SimDuration::from_secs(*mean_dwell_secs),
                span: SimDuration::from_mins(*span_mins),
                ..Default::default()
            };
            let trace = random_walk::generate(&env, &params, &mut rng);
            Ok((env, trace))
        }
        (e, m) => Err(ControlError::IncompatibleScenario {
            environment: format!("{e:?}"),
            combined_with: format!("{m:?}"),
        }),
    }
}

/// Reject parameter values that would otherwise trip asserts deep in the
/// samplers (a zero mean dwell reaches `SimRng::exp_duration`'s positive
/// precondition) or build a nonsensical network. Scenarios arrive from
/// JSON files, so these are recoverable errors, not panics.
fn validate(sc: &Scenario) -> Result<(), ControlError> {
    // `is_finite` first so NaN capacities are rejected too.
    if !sc.cell_throughput_kbps.is_finite() || sc.cell_throughput_kbps <= 0.0 {
        return Err(ControlError::BadParameter {
            what: "cell_throughput_kbps",
            value: sc.cell_throughput_kbps,
        });
    }
    if !sc.backbone_kbps.is_finite() || sc.backbone_kbps <= 0.0 {
        return Err(ControlError::BadParameter {
            what: "backbone_kbps",
            value: sc.backbone_kbps,
        });
    }
    if !(0.0..1.0).contains(&sc.wireless_error) {
        return Err(ControlError::BadParameter {
            what: "wireless_error",
            value: sc.wireless_error,
        });
    }
    if let MobilitySpec::RandomWalk {
        mean_dwell_secs: 0, ..
    } = sc.mobility
    {
        return Err(ControlError::BadParameter {
            what: "mean_dwell_secs",
            value: 0.0,
        });
    }
    if let WorkloadSpec::Fixed { kbps } = sc.workload {
        if !kbps.is_finite() || kbps <= 0.0 {
            return Err(ControlError::BadParameter {
                what: "workload kbps",
                value: kbps,
            });
        }
        // Defense in depth: the exact request this workload will issue
        // must pass flowspec validation too (NaN/negative/inverted
        // bounds would otherwise surface as panics deep in the rate
        // allocator).
        if arm_net::flowspec::QosRequest::fixed(kbps)
            .validate()
            .is_err()
        {
            return Err(ControlError::BadParameter {
                what: "workload kbps",
                value: kbps,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_round_trips_through_json() {
        let sc = Scenario::sample();
        let json = serde_json::to_string_pretty(&sc).expect("serialises");
        let back: Scenario = serde_json::from_str(&json).expect("parses");
        assert_eq!(back.name, sc.name);
        assert_eq!(back.environment, sc.environment);
        assert_eq!(back.mobility, sc.mobility);
        assert_eq!(back.strategy, sc.strategy);
    }

    #[test]
    fn sample_scenario_runs_clean() {
        let report = run(&Scenario::sample()).expect("valid scenario");
        assert_eq!(report.dropped, 0, "the paper strategy holds the lecture");
        assert!(report.requests > 35);
        assert!(report.moves > 100);
    }

    #[test]
    fn random_walk_scenario_runs_on_every_env() {
        for env in [
            EnvSpec::Figure4,
            EnvSpec::OfficeWing { offices: 3 },
            EnvSpec::Meeting,
        ] {
            let sc = Scenario {
                name: "walk".into(),
                environment: env,
                mobility: MobilitySpec::RandomWalk {
                    population: 15,
                    mean_dwell_secs: 120,
                    span_mins: 20,
                },
                workload: WorkloadSpec::Fixed { kbps: 64.0 },
                strategy: Strategy::Aggregate,
                cell_throughput_kbps: 800.0,
                backbone_kbps: 100_000.0,
                wireless_error: 0.0,
                t_th_secs: 300,
                seed: 5,
            };
            let report = run(&sc).expect("valid scenario");
            assert!(report.moves > 0);
            assert_eq!(
                report.handoff_attempts,
                report.dropped + (report.handoff_attempts - report.dropped)
            );
        }
    }

    #[test]
    fn workload_none_tracks_mobility_only() {
        let sc = Scenario {
            workload: WorkloadSpec::None,
            ..Scenario::sample()
        };
        let report = run(&sc).expect("valid scenario");
        assert_eq!(report.requests, 0);
        assert_eq!(report.handoff_attempts, 0);
        assert!(report.moves > 0);
    }

    #[test]
    fn incompatible_combo_is_a_typed_error() {
        let sc = Scenario {
            environment: EnvSpec::Figure4,
            mobility: MobilitySpec::Meeting { attendees: 10 },
            ..Scenario::sample()
        };
        let err = run(&sc).expect_err("scenario-input mismatch must be recoverable");
        assert!(matches!(err, ControlError::IncompatibleScenario { .. }));
    }

    #[test]
    fn out_of_range_parameters_are_typed_errors() {
        let zero_dwell = Scenario {
            mobility: MobilitySpec::RandomWalk {
                population: 5,
                mean_dwell_secs: 0,
                span_mins: 10,
            },
            ..Scenario::sample()
        };
        let nan_capacity = Scenario {
            cell_throughput_kbps: f64::NAN,
            ..Scenario::sample()
        };
        let certain_loss = Scenario {
            wireless_error: 1.0,
            ..Scenario::sample()
        };
        let free_workload = Scenario {
            workload: WorkloadSpec::Fixed { kbps: 0.0 },
            ..Scenario::sample()
        };
        let nan_workload = Scenario {
            workload: WorkloadSpec::Fixed { kbps: f64::NAN },
            ..Scenario::sample()
        };
        let negative_workload = Scenario {
            workload: WorkloadSpec::Fixed { kbps: -16.0 },
            ..Scenario::sample()
        };
        for sc in [
            zero_dwell,
            nan_capacity,
            certain_loss,
            free_workload,
            nan_workload,
            negative_workload,
        ] {
            let err = run(&sc).expect_err("out-of-range parameter must be recoverable");
            assert!(matches!(err, ControlError::BadParameter { .. }), "{err}");
        }
    }
}
