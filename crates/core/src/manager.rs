// Audited: every expect in this file is an `invariant:`/`precondition:`
// panic (see the arm-check `no-panic` lint).
#![allow(clippy::expect_used)]

//! The integrated resource manager (the paper's Figure 1).
//!
//! One [`ResourceManager`] owns the network, the zone's profile server,
//! the per-cell class policies, and the metrics, and exposes the four
//! control-plane entry points the simulation drivers call:
//!
//! * [`request_connection`](ResourceManager::request_connection) — §5.1
//!   admission (with conflict resolution squeezing ongoing connections
//!   within their bounds),
//! * [`portable_moved`](ResourceManager::portable_moved) — handoff
//!   processing: profile updates, per-connection handoff admission that
//!   may consume advance claims (its own predicted claim, the destination
//!   cell's aggregate claim, the source cell's departure claim, or the
//!   `B_dyn` pool — in that order), drop accounting, and reservation
//!   refresh,
//! * [`terminate`](ResourceManager::terminate) — normal teardown,
//! * [`slot_tick`](ResourceManager::slot_tick) — aggregate-policy
//!   bookkeeping: feed the cafeteria/default predictors, refresh claims.
//!
//! Claims are recomputed wholesale after every event from the current
//! state — O(cells × portables) per event, trivially fast at indoor
//! scale and much easier to audit than incremental updates.

use std::collections::{BTreeMap, BTreeSet};

use arm_mobility::environment::IndoorEnvironment;
use arm_net::flowspec::QosRequest;
use arm_net::ids::{CellId, ConnId, LinkId, NodeId, PortableId, ZoneId};
use arm_net::link::ResvClaim;
use arm_net::routing::{shortest_path, shortest_path_avoiding};
use arm_net::{Connection, ConnectionState, Network, Route};
use arm_obs::{ClaimSource, Obs, ObsEvent, Phase};
use arm_profiles::{CellClass, LoungeKind, ZonedProfiles};
use arm_qos::adaptation::{DynPoolPolicy, StaticMobileTest};
use arm_qos::admission::{admit, AdmissionRequest, Discipline, MobilityClass, RequestKind};
use arm_reservation::cafeteria::CafeteriaPredictor;
use arm_reservation::default_cell::OneStepMemory;
use arm_reservation::dispatch::{decide_traced, ReservationDecision};
use arm_reservation::meeting::{BookingCalendar, MeetingRoomPolicy};
use arm_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::error::ControlError;
use crate::metrics::Metrics;
use crate::multicast::MulticastState;
use crate::snapshot::{ManagerSnapshot, SnapshotError};
use crate::strategy::Strategy;

/// Manager configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ManagerConfig {
    /// Reservation strategy under test.
    pub strategy: Strategy,
    /// Static/mobile dwell threshold `T_th`.
    pub t_th: SimDuration,
    /// Scheduling discipline for the Table 2 tests.
    pub discipline: Discipline,
    /// `B_dyn` pool policy; `None` disables the pool.
    pub dyn_pool: Option<DynPoolPolicy>,
    /// Slot width for the aggregate (lounge) policies and metrics series.
    pub slot: SimDuration,
    /// Expected bandwidth per not-yet-seen user (kbps), used to size
    /// aggregate claims (meeting room, cafeteria, default) — the §7.1
    /// workload mean of 28 kbps by default.
    pub per_user_kbps: f64,
    /// Run maxmin conflict resolution after each event (needed only when
    /// connections have adaptable ranges; fixed-rate experiments skip it
    /// for speed).
    pub resolve_excess: bool,
    /// Resolve conflicts through the resident incremental maxmin engine
    /// (dirty-region re-fill) instead of rebuilding the whole problem
    /// each round. Bit-identical results either way — see
    /// `arm_qos::maxmin::incremental`; off switches back to the
    /// from-scratch path for differential testing.
    pub incremental: bool,
    /// Pre-establish §4's wired multicast branches toward a mobile's
    /// neighbouring cells (failures non-fatal).
    pub multicast: bool,
    /// The eqn-2 threshold δ: an excess-bandwidth *gain* smaller than
    /// this does not trigger an adaptation round (shrinkage always
    /// does). Controls the frequency/benefit trade-off of adaptation.
    pub delta: f64,
    /// Policy for connections riding a link that fails: `false`
    /// (default) squeezes them to `b_min` (re-routing around the
    /// failure where the topology allows) and lets them ride out the
    /// outage; `true` drops them outright.
    pub drop_on_link_failure: bool,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            strategy: Strategy::Paper,
            t_th: SimDuration::from_mins(5),
            discipline: Discipline::Wfq,
            dyn_pool: Some(DynPoolPolicy::default()),
            slot: SimDuration::from_mins(1),
            per_user_kbps: 28.0,
            resolve_excess: false,
            incremental: true,
            multicast: true,
            delta: 0.0,
            drop_on_link_failure: false,
        }
    }
}

/// Tracked per-portable state.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub(crate) struct PortableState {
    cell: CellId,
    prev_cell: Option<CellId>,
    entered_at: SimTime,
}

/// The integrated control plane.
pub struct ResourceManager {
    /// The data plane (public for inspection by drivers and tests).
    pub net: Network,
    env: IndoorEnvironment,
    /// The universe of zones and their profile servers (public for
    /// prediction inspection).
    pub profiles: ZonedProfiles,
    cfg: ManagerConfig,
    /// Run metrics.
    pub metrics: Metrics,
    portables: BTreeMap<PortableId, PortableState>,
    meeting_policies: BTreeMap<CellId, MeetingRoomPolicy>,
    cafeteria_pred: BTreeMap<CellId, CafeteriaPredictor>,
    default_pred: BTreeMap<CellId, OneStepMemory>,
    /// Handoffs out of each cell in the current slot.
    slot_outflow: BTreeMap<CellId, u32>,
    /// §4 multicast branches per connection (public for inspection).
    pub multicast: MulticastState,
    /// Per-wireless-link excess observed at the last adaptation round
    /// (`b'_av,l(t⁻)` of eqn 2).
    last_excess: BTreeMap<LinkId, f64>,
    /// Adaptation rounds actually run (eqn-2 triggered).
    pub adaptation_rounds: u64,
    /// Resident incremental maxmin engine (public so drivers and tests
    /// can inspect its work-saved counters).
    pub maxmin: arm_qos::maxmin::incremental::IncrementalMaxmin,
    /// Connections force-dropped by channel fades (negative excess →
    /// re-negotiation, §5.3).
    pub channel_renegotiations: u64,
    /// The backbone node connections terminate at.
    server_node: NodeId,
    /// Links currently failed by fault injection.
    down_links: BTreeSet<LinkId>,
    /// Zones whose profile server is currently out.
    down_zones: BTreeSet<ZoneId>,
    /// Portables whose next handoff loses its signalling.
    doomed_handoffs: BTreeSet<PortableId>,
    /// Link failures processed (idempotent duplicates not counted).
    pub link_failures: u64,
    /// Times the stale-profile fallback sized a reservation because the
    /// owning zone's profile server was out.
    pub stale_profile_fallbacks: u64,
    /// Profile updates lost to server outages.
    pub lost_profile_updates: u64,
    /// Handoffs processed without signalling (claims unusable).
    pub handoff_signalling_failures: u64,
    /// Passive observer. [`Obs::off`] by default — observation never
    /// influences any decision, so the disabled path is bit-identical
    /// (asserted by `tests/obs_differential.rs`).
    pub obs: Obs,
}

impl ResourceManager {
    /// Build the manager over an environment.
    pub fn new(env: IndoorEnvironment, net: Network, cfg: ManagerConfig) -> Self {
        let mut profiles = ZonedProfiles::new();
        env.seed_zoned_profiles(&mut profiles);
        // The backbone star's hub (node 0 by construction).
        let server_node = NodeId(0);
        let mut meeting_policies = BTreeMap::new();
        let mut cafeteria_pred = BTreeMap::new();
        let mut default_pred = BTreeMap::new();
        for (id, info) in env.cells() {
            match info.class {
                CellClass::Lounge(LoungeKind::MeetingRoom) => {
                    meeting_policies.insert(
                        id,
                        MeetingRoomPolicy::new(BookingCalendar::new(), cfg.per_user_kbps),
                    );
                }
                CellClass::Lounge(LoungeKind::Cafeteria) => {
                    cafeteria_pred.insert(id, CafeteriaPredictor::new());
                }
                CellClass::Lounge(LoungeKind::Default) => {
                    default_pred.insert(id, OneStepMemory::new());
                }
                _ => {}
            }
        }
        let metrics = Metrics::new(cfg.slot);
        ResourceManager {
            net,
            env,
            profiles,
            cfg,
            metrics,
            portables: BTreeMap::new(),
            meeting_policies,
            cafeteria_pred,
            default_pred,
            slot_outflow: BTreeMap::new(),
            multicast: MulticastState::new(),
            last_excess: BTreeMap::new(),
            adaptation_rounds: 0,
            maxmin: arm_qos::maxmin::incremental::IncrementalMaxmin::new(),
            channel_renegotiations: 0,
            server_node,
            down_links: BTreeSet::new(),
            down_zones: BTreeSet::new(),
            doomed_handoffs: BTreeSet::new(),
            link_failures: 0,
            stale_profile_fallbacks: 0,
            lost_profile_updates: 0,
            handoff_signalling_failures: 0,
            obs: Obs::off(),
        }
    }

    /// Install an observer (replacing the default [`Obs::off`]).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Zones whose profile server is currently out — the health signal
    /// a serving front end uses to decide degraded-mode admission.
    pub fn profile_outages(&self) -> usize {
        self.down_zones.len()
    }

    /// Detach the observer (e.g. to build a run report), leaving
    /// observation off.
    pub fn take_obs(&mut self) -> Obs {
        std::mem::take(&mut self.obs)
    }

    /// Capture the complete control-plane state as a schema-versioned
    /// [`ManagerSnapshot`] (everything except the passive observer).
    /// See `crate::snapshot` for the completeness/exactness contract.
    pub fn snapshot(&self) -> ManagerSnapshot {
        ManagerSnapshot {
            schema: crate::snapshot::SNAPSHOT_SCHEMA_VERSION,
            net: self.net.clone(),
            env: self.env.clone(),
            profiles: self.profiles.clone(),
            cfg: self.cfg.clone(),
            metrics: self.metrics.clone(),
            portables: self.portables.clone(),
            meeting_policies: self.meeting_policies.clone(),
            cafeteria_pred: self.cafeteria_pred.clone(),
            default_pred: self.default_pred.clone(),
            slot_outflow: self.slot_outflow.clone(),
            multicast: self.multicast.clone(),
            last_excess: self.last_excess.clone(),
            adaptation_rounds: self.adaptation_rounds,
            maxmin: self.maxmin.clone(),
            channel_renegotiations: self.channel_renegotiations,
            server_node: self.server_node,
            down_links: self.down_links.clone(),
            down_zones: self.down_zones.clone(),
            doomed_handoffs: self.doomed_handoffs.clone(),
            link_failures: self.link_failures,
            stale_profile_fallbacks: self.stale_profile_fallbacks,
            lost_profile_updates: self.lost_profile_updates,
            handoff_signalling_failures: self.handoff_signalling_failures,
        }
    }

    /// Rebuild a manager from a snapshot, attaching `obs` as the new
    /// process's observer (snapshots never carry one — observation is
    /// passive and bit-identical, so any observer is valid here).
    ///
    /// The snapshot is validated first: schema skew and inconsistent
    /// ledgers come back as typed [`SnapshotError`]s, never panics.
    pub fn restore(snap: ManagerSnapshot, obs: Obs) -> Result<Self, SnapshotError> {
        snap.validate()?;
        Ok(ResourceManager {
            net: snap.net,
            env: snap.env,
            profiles: snap.profiles,
            cfg: snap.cfg,
            metrics: snap.metrics,
            portables: snap.portables,
            meeting_policies: snap.meeting_policies,
            cafeteria_pred: snap.cafeteria_pred,
            default_pred: snap.default_pred,
            slot_outflow: snap.slot_outflow,
            multicast: snap.multicast,
            last_excess: snap.last_excess,
            adaptation_rounds: snap.adaptation_rounds,
            maxmin: snap.maxmin,
            channel_renegotiations: snap.channel_renegotiations,
            server_node: snap.server_node,
            down_links: snap.down_links,
            down_zones: snap.down_zones,
            doomed_handoffs: snap.doomed_handoffs,
            link_failures: snap.link_failures,
            stale_profile_fallbacks: snap.stale_profile_fallbacks,
            lost_profile_updates: snap.lost_profile_updates,
            handoff_signalling_failures: snap.handoff_signalling_failures,
            obs,
        })
    }

    /// Replace a meeting room's booking calendar.
    pub fn set_calendar(&mut self, cell: CellId, calendar: BookingCalendar) {
        let policy = MeetingRoomPolicy::new(calendar, self.cfg.per_user_kbps);
        self.meeting_policies.insert(cell, policy);
    }

    /// Where a portable currently is.
    pub fn portable_cell(&self, p: PortableId) -> Option<CellId> {
        self.portables.get(&p).map(|s| s.cell)
    }

    /// Is the portable static (dwelled ≥ `T_th`)?
    pub fn is_static(&self, p: PortableId, now: SimTime) -> bool {
        let test = StaticMobileTest::new(self.cfg.t_th);
        self.portables
            .get(&p)
            .is_some_and(|s| test.is_static(s.entered_at, now))
    }

    // ------------------------------------------------------------------
    // Entry points
    // ------------------------------------------------------------------

    /// A portable appears (powers on) in a cell.
    pub fn portable_appears(&mut self, p: PortableId, cell: CellId, now: SimTime) {
        self.portables.insert(
            p,
            PortableState {
                cell,
                prev_cell: None,
                entered_at: now,
            },
        );
        if self.zone_down(cell) {
            // The zone's profile server is out: the first-sighting
            // update is lost (the profile stays stale after recovery).
            self.lost_profile_updates += 1;
        } else {
            self.profiles.portable_entered(p, cell);
        }
        if self.is_meeting_room(cell) {
            if let Some(policy) = self.meeting_policies.get_mut(&cell) {
                policy.on_arrival(now);
            }
        }
        self.refresh_claims(now);
    }

    /// A new-connection request from a tracked portable (§5.1).
    #[arm_attrs::marks_dirty]
    pub fn request_connection(
        &mut self,
        p: PortableId,
        qos: QosRequest,
        now: SimTime,
    ) -> Result<ConnId, arm_qos::Rejection> {
        let cell = self
            .portables
            .get(&p)
            .expect("precondition: portable must appear before requesting connections")
            .cell;
        let admit_tok = self.obs.phase_start(now);
        self.metrics.requests.incr();
        let id = self.net.next_conn_id();
        let route = self.route_for(cell);
        self.net.install(Connection::new(
            id,
            p,
            cell,
            self.server_node,
            qos,
            route,
            now,
        ));
        let mobility = if self.is_static(p, now) {
            MobilityClass::Static
        } else {
            MobilityClass::Mobile
        };
        let req = AdmissionRequest {
            conn: id,
            discipline: self.cfg.discipline,
            mobility,
            kind: RequestKind::New,
        };
        match admit(&mut self.net, req) {
            Ok(_) => {
                self.mark_conn_dirty(id);
                self.sync_multicast_for(p, now);
                self.after_event(now);
                self.obs.emit_with(|| ObsEvent::AdmitDecision {
                    t: now,
                    conn: id,
                    cell,
                    admitted: true,
                    cause: "admitted".to_string(),
                });
                self.obs.phase_end(Phase::Admission, admit_tok, now);
                Ok(id)
            }
            Err(rej) => {
                self.metrics.blocked.incr();
                self.net
                    .get_mut(id)
                    .expect("invariant: installed above")
                    .state = ConnectionState::Blocked;
                self.obs.emit_with(|| ObsEvent::AdmitDecision {
                    t: now,
                    conn: id,
                    cell,
                    admitted: false,
                    cause: "blocked".to_string(),
                });
                self.obs.phase_end(Phase::Admission, admit_tok, now);
                Err(rej)
            }
        }
    }

    /// Application-initiated QoS re-negotiation (§4.2): "the network
    /// essentially treats it as a new connection request" — the old
    /// reservation is released and the connection re-admitted with the
    /// new bounds on its current route. On rejection the old reservation
    /// is restored and the connection continues under its previous
    /// bounds (re-negotiation failure must not kill an ongoing
    /// connection).
    #[arm_attrs::marks_dirty]
    pub fn renegotiate(
        &mut self,
        id: ConnId,
        new_qos: QosRequest,
        now: SimTime,
    ) -> Result<(), arm_qos::Rejection> {
        new_qos
            .validate()
            .expect("precondition: caller validates the request");
        let (p, route, old_qos, live) = {
            let c = self
                .net
                .get(id)
                .expect("precondition: renegotiate on unknown connection");
            (c.portable, c.route.clone(), c.qos, c.state.is_live())
        };
        assert!(live, "renegotiate on a finished connection");
        let admit_tok = self.obs.phase_start(now);
        self.metrics.requests.incr();
        // Release the current reservation, swap in the new bounds.
        self.net.release_route(id, &route);
        {
            let c = self.net.get_mut(id).expect("invariant: checked above");
            c.qos = new_qos;
            c.b_current = new_qos.b_min;
        }
        let mobility = if self.is_static(p, now) {
            MobilityClass::Static
        } else {
            MobilityClass::Mobile
        };
        let req = AdmissionRequest {
            conn: id,
            discipline: self.cfg.discipline,
            mobility,
            kind: RequestKind::New,
        };
        match admit(&mut self.net, req) {
            Ok(_) => {
                self.mark_conn_dirty(id);
                self.sync_multicast_for(p, now);
                self.after_event(now);
                let cell = self.net.get(id).map_or(CellId(0), |c| c.cell);
                self.obs.emit_with(|| ObsEvent::AdmitDecision {
                    t: now,
                    conn: id,
                    cell,
                    admitted: true,
                    cause: "renegotiate-accepted".to_string(),
                });
                self.obs.phase_end(Phase::Admission, admit_tok, now);
                Ok(())
            }
            Err(rej) => {
                self.metrics.blocked.incr();
                // Restore the previous bounds; the resources were just
                // freed, so re-admission under them cannot fail.
                {
                    let c = self.net.get_mut(id).expect("invariant: checked above");
                    c.qos = old_qos;
                    c.b_current = old_qos.b_min;
                }
                let _ = admit(
                    &mut self.net,
                    AdmissionRequest {
                        conn: id,
                        discipline: self.cfg.discipline,
                        mobility,
                        kind: RequestKind::New,
                    },
                )
                .expect("invariant: restoring the previous reservation always fits");
                self.mark_conn_dirty(id);
                self.after_event(now);
                let cell = self.net.get(id).map_or(CellId(0), |c| c.cell);
                self.obs.emit_with(|| ObsEvent::AdmitDecision {
                    t: now,
                    conn: id,
                    cell,
                    admitted: false,
                    cause: "renegotiate-rejected".to_string(),
                });
                self.obs.phase_end(Phase::Admission, admit_tok, now);
                Err(rej)
            }
        }
    }

    /// Normal connection teardown.
    #[arm_attrs::marks_dirty]
    pub fn terminate(&mut self, id: ConnId, now: SimTime) {
        if self.net.get(id).is_some_and(|c| c.state.is_live()) {
            self.mark_conn_dirty(id);
            self.multicast.teardown(&mut self.net, id);
            self.net.finish(id, ConnectionState::Terminated);
            self.metrics.completed.incr();
            self.after_event(now);
        }
    }

    /// A tracked portable hands off `from → to`. Returns the ids of
    /// connections dropped in the process.
    #[arm_attrs::marks_dirty]
    pub fn portable_moved(&mut self, p: PortableId, to: CellId, now: SimTime) -> Vec<ConnId> {
        let state = *self
            .portables
            .get(&p)
            .expect("precondition: portable must appear before moving");
        let from = state.cell;
        assert_ne!(from, to, "no-op move");
        let handoff_tok = self.obs.phase_start(now);
        // Profile bookkeeping. An outage of either involved zone's
        // profile server loses the update (profiles go stale).
        if self.zone_down(from) || self.zone_down(to) {
            self.lost_profile_updates += 1;
        } else {
            self.profiles
                .record_handoff(p, state.prev_cell, from, to, now);
        }
        self.metrics.record_arrival(to, now);
        *self.slot_outflow.entry(from).or_insert(0) += 1;
        // Meeting-room arrival/departure counters.
        if self.is_meeting_room(to) {
            if let Some(policy) = self.meeting_policies.get_mut(&to) {
                policy.on_arrival(now);
            }
        }
        if self.is_meeting_room(from) {
            if let Some(policy) = self.meeting_policies.get_mut(&from) {
                policy.on_departure(now);
            }
        }
        // Move the connections.
        let conns: Vec<ConnId> = self.net.connections_of_portable(p).map(|c| c.id).collect();
        let total_conns = conns.len();
        // A lost handoff signal means the advance reservations cannot
        // be consumed for this move: plain admission or drop.
        let claims_usable = !self.doomed_handoffs.remove(&p);
        if !claims_usable {
            self.handoff_signalling_failures += 1;
        }
        let mut dropped = Vec::new();
        for id in conns {
            self.metrics.handoff_attempts.incr();
            self.mark_conn_dirty(id); // the route about to be released
            if self.handoff_connection(id, to, now, claims_usable) {
                self.mark_conn_dirty(id); // the newly admitted route
                self.metrics.handoff_successes.incr();
            } else {
                self.metrics.dropped.incr();
                self.multicast.teardown(&mut self.net, id);
                dropped.push(id);
            }
        }
        // Update the portable's position and mobility clock.
        self.portables.insert(
            p,
            PortableState {
                cell: to,
                prev_cell: Some(from),
                entered_at: now,
            },
        );
        self.sync_multicast_for(p, now);
        self.after_event(now);
        self.obs.emit_with(|| ObsEvent::HandoffOutcome {
            t: now,
            portable: p,
            from,
            to,
            carried: (total_conns - dropped.len()) as u64,
            dropped: dropped.len() as u64,
            cause: if claims_usable {
                "completed".to_string()
            } else {
                "signalling-failed".to_string()
            },
        });
        self.obs.phase_end(Phase::Handoff, handoff_tok, now);
        dropped
    }

    /// §4 multicast maintenance for one portable: a *mobile* portable's
    /// live connections get wired branches toward the current cell's
    /// neighbours; a static portable's branches are torn down ("no
    /// multicast routes … corresponding to this [B_dyn] fraction").
    fn sync_multicast_for(&mut self, p: PortableId, now: SimTime) {
        if !self.cfg.multicast {
            return;
        }
        let state = match self.portables.get(&p) {
            Some(s) => *s,
            None => return,
        };
        let conns: Vec<(ConnId, f64)> = self
            .net
            .connections_of_portable(p)
            .map(|c| (c.id, c.qos.b_min))
            .collect();
        let mobile = !self.is_static(p, now);
        let neighbors: Vec<CellId> = self.env.neighbors(state.cell).collect();
        for (id, b_min) in conns {
            if mobile {
                self.multicast
                    .establish(&mut self.net, id, state.cell, b_min, &neighbors);
            } else {
                self.multicast.teardown(&mut self.net, id);
            }
        }
    }

    /// Slot boundary: feed the aggregate predictors and refresh claims.
    pub fn slot_tick(&mut self, now: SimTime) {
        self.obs.emit_with(|| ObsEvent::ReservationSlotRolled {
            t: now,
            slot: now.ticks() / self.cfg.slot.ticks(),
        });
        let pred_tok = self.obs.phase_start(now);
        let outflow = std::mem::take(&mut self.slot_outflow);
        for (cell, pred) in self.cafeteria_pred.iter_mut() {
            pred.observe(f64::from(outflow.get(cell).copied().unwrap_or(0)));
        }
        for (cell, pred) in self.default_pred.iter_mut() {
            pred.observe(f64::from(outflow.get(cell).copied().unwrap_or(0)));
        }
        self.obs.phase_end(Phase::PredictionUpdate, pred_tok, now);
        // Static transitions since the last slot retire their multicast
        // branches here (slot granularity is ample: T_th is minutes).
        let ps: Vec<PortableId> = self.portables.keys().copied().collect();
        for p in ps {
            self.sync_multicast_for(p, now);
        }
        self.after_event(now);
    }

    /// The wireless channel of `cell` changed: its effective capacity is
    /// now `effective_fraction` of nominal (§2.1's time-varying medium).
    ///
    /// The lost capacity is modelled as a [`ResvClaim::Channel`] claim.
    /// When the loss cannot be absorbed by squeezing excess allocations
    /// and releasing advance claims — i.e. `b'_av,l` would stay negative —
    /// connections are told to re-negotiate and, failing that, dropped
    /// youngest-first (§5.3: "if b'_av,l < 0, then some connections are
    /// notified to do re-negotiation"). Returns the dropped connections,
    /// or [`ControlError::BadChannelFraction`] for a fraction outside
    /// `(0, 1]` (scenario input, so an error rather than a panic).
    #[arm_attrs::marks_dirty]
    pub fn channel_change(
        &mut self,
        cell: CellId,
        effective_fraction: f64,
        now: SimTime,
    ) -> Result<Vec<ConnId>, ControlError> {
        if !(effective_fraction > 0.0 && effective_fraction <= 1.0) {
            return Err(ControlError::BadChannelFraction {
                cell,
                fraction: effective_fraction,
            });
        }
        let wl = self.net.topology().wireless_link(cell);
        let capacity = self.net.link(wl).capacity();
        let target_loss = capacity * (1.0 - effective_fraction);
        // Make room for the loss claim: shed the advance claims of this
        // link first — a faded medium cannot honour reservations anyway.
        let mut victims = Vec::new();
        loop {
            let link = self.net.link(wl);
            let other_resv = link.b_resv() - link.claim(ResvClaim::Channel);
            let headroom = capacity - link.sum_b_min() - other_resv;
            if target_loss <= headroom + 1e-9 {
                break;
            }
            // Drop the youngest connection on the link (the model of
            // §6.3: "the connection with a later arrival time is
            // dropped").
            let deficit = target_loss - headroom;
            let mut vs = arm_qos::adaptation::renegotiation_victims(&self.net, wl, deficit);
            if vs.is_empty() {
                break; // only claims remain; set_claim will cap-release them
            }
            let v = vs.remove(0);
            self.multicast.teardown(&mut self.net, v);
            self.net.finish(v, ConnectionState::Dropped);
            self.channel_renegotiations += 1;
            victims.push(v);
        }
        self.net
            .link_mut(wl)
            .set_claim(ResvClaim::Channel, target_loss);
        self.mark_link_dirty(wl);
        self.after_event(now);
        Ok(victims)
    }

    // ------------------------------------------------------------------
    // Fault injection entry points
    // ------------------------------------------------------------------

    /// Links currently failed by fault injection.
    pub fn down_links(&self) -> &BTreeSet<LinkId> {
        &self.down_links
    }

    /// Is this link currently failed?
    pub fn is_link_down(&self, l: LinkId) -> bool {
        self.down_links.contains(&l)
    }

    /// Zones whose profile server is currently out.
    pub fn down_zones(&self) -> &BTreeSet<ZoneId> {
        &self.down_zones
    }

    /// A link (wired or wireless) fails. Connections riding it are
    /// re-routed around the failure where the topology allows, squeezed
    /// to `b_min` otherwise, and dropped only under the explicit
    /// [`ManagerConfig::drop_on_link_failure`] policy. The link's
    /// remaining headroom is sealed with a [`ResvClaim::Outage`] claim so
    /// nothing new is admitted until restoration. Idempotent: a second
    /// failure of a down link is a no-op. Returns the dropped
    /// connections.
    #[arm_attrs::marks_dirty]
    pub fn link_failed(&mut self, link: LinkId, now: SimTime) -> Vec<ConnId> {
        if !self.down_links.insert(link) {
            return Vec::new();
        }
        self.link_failures += 1;
        self.obs.emit_with(|| ObsEvent::FaultInjected {
            t: now,
            fault: format!("link-failed:{link}"),
        });
        self.mark_link_dirty(link);
        let ids = self.net.conn_ids_on_link(link);
        let mut dropped = Vec::new();
        for id in ids {
            if !self.net.get(id).is_some_and(|c| c.state.is_live()) {
                continue;
            }
            self.mark_conn_dirty(id); // squeezed, re-routed, or dropped
            if self.cfg.drop_on_link_failure {
                self.multicast.teardown(&mut self.net, id);
                self.net.finish(id, ConnectionState::Dropped);
                self.metrics.dropped.incr();
                dropped.push(id);
            } else if !self.try_reroute(id) {
                // Ride out the outage at the guaranteed floor.
                let b_min = self
                    .net
                    .get(id)
                    .expect("invariant: live connection")
                    .qos
                    .b_min;
                self.net
                    .set_conn_rate(id, b_min)
                    .expect("invariant: shrinking to b_min never overcommits");
            }
        }
        self.seal_failed_link(link);
        self.after_event(now);
        dropped
    }

    /// The link comes back. Its outage seal is lifted, connections are
    /// re-routed back onto their shortest paths, and the normal
    /// adaptation path re-grows squeezed rates. Idempotent.
    #[arm_attrs::marks_dirty]
    pub fn link_restored(&mut self, link: LinkId, now: SimTime) {
        if !self.down_links.remove(&link) {
            return;
        }
        self.obs.emit_with(|| ObsEvent::FaultInjected {
            t: now,
            fault: format!("link-restored:{link}"),
        });
        self.net.link_mut(link).release_claim(ResvClaim::Outage);
        self.mark_link_dirty(link);
        let ids: Vec<ConnId> = self.net.live_connections().map(|c| c.id).collect();
        for id in ids {
            if self.try_reroute(id) {
                self.mark_conn_dirty(id);
            }
        }
        self.after_event(now);
    }

    /// A zone's profile server stops answering: predictions for its
    /// cells fall back to the even-spread default and profile updates
    /// are lost until [`profile_server_up`](Self::profile_server_up).
    /// Idempotent.
    pub fn profile_server_down(&mut self, zone: ZoneId, now: SimTime) {
        if self.down_zones.insert(zone) {
            self.obs.emit_with(|| ObsEvent::FaultInjected {
                t: now,
                fault: format!("profile-server-down:{zone}"),
            });
            self.after_event(now);
        }
    }

    /// The zone's profile server recovers (with whatever state it had
    /// when it went down — updates during the outage are lost).
    pub fn profile_server_up(&mut self, zone: ZoneId, now: SimTime) {
        if self.down_zones.remove(&zone) {
            self.obs.emit_with(|| ObsEvent::FaultInjected {
                t: now,
                fault: format!("profile-server-up:{zone}"),
            });
            self.after_event(now);
        }
    }

    /// The next handoff attempted by `p` loses its signalling: advance
    /// claims cannot be consumed for it and its connections must pass
    /// plain admission at the destination or be dropped.
    pub fn fail_next_handoff(&mut self, p: PortableId) {
        self.doomed_handoffs.insert(p);
    }

    /// Claim the failed link's remaining headroom so nothing new is
    /// admitted on it (`set_claim` caps the grant to what exists).
    fn seal_failed_link(&mut self, link: LinkId) {
        let cap = self.net.link(link).capacity();
        self.net.link_mut(link).set_claim(ResvClaim::Outage, cap);
    }

    /// Move `id` onto the shortest route that avoids every down link, if
    /// that differs from its current route and has room; true on success.
    fn try_reroute(&mut self, id: ConnId) -> bool {
        let (cell, old_route, b_min) = {
            let c = self.net.get(id).expect("invariant: live connection");
            (c.cell, c.route.clone(), c.qos.b_min)
        };
        let new_route = {
            let topo = self.net.topology();
            shortest_path_avoiding(
                topo,
                topo.air_node(cell),
                self.server_node,
                &self.down_links,
            )
        };
        let Some(new_route) = new_route else {
            return false;
        };
        if new_route == old_route {
            return false;
        }
        self.net.release_route(id, &old_route);
        {
            let c = self.net.get_mut(id).expect("invariant: live connection");
            c.route = new_route;
            c.b_current = b_min;
        }
        let req = AdmissionRequest {
            conn: id,
            discipline: self.cfg.discipline,
            mobility: MobilityClass::Mobile,
            kind: RequestKind::Handoff,
        };
        if admit(&mut self.net, req).is_ok() {
            return true;
        }
        // The detour has no room. Fall back to the old route — its
        // resources were just freed, so restoring cannot fail — and let
        // the caller squeeze instead.
        {
            let c = self.net.get_mut(id).expect("invariant: live connection");
            c.route = old_route;
            c.b_current = b_min;
        }
        let _ = admit(
            &mut self.net,
            AdmissionRequest {
                conn: id,
                discipline: self.cfg.discipline,
                mobility: MobilityClass::Mobile,
                kind: RequestKind::Handoff,
            },
        )
        .expect("invariant: restoring the previous reservation always fits");
        false
    }

    /// Is the profile server owning `cell` currently out?
    fn zone_down(&self, cell: CellId) -> bool {
        !self.down_zones.is_empty() && self.down_zones.contains(&self.profiles.zone_of(cell))
    }

    // ------------------------------------------------------------------
    // Handoff machinery
    // ------------------------------------------------------------------

    /// Move one connection into `to`; true on success. §4.3/§5.1: the
    /// handoff may use advance-reserved resources — its own predicted
    /// claim first, then the destination's aggregate claim, the source
    /// cell's departure claim, and finally the `B_dyn` pool. With
    /// `claims_usable` false (handoff signalling lost) none of that
    /// machinery is reachable: the connection must pass plain admission
    /// at the destination or be dropped.
    fn handoff_connection(
        &mut self,
        id: ConnId,
        to: CellId,
        now: SimTime,
        claims_usable: bool,
    ) -> bool {
        let (old_route, b_min, from) = {
            let c = self.net.get(id).expect("invariant: live connection");
            (c.route.clone(), c.qos.b_min, c.cell)
        };
        // The old cell's resources are released as the portable leaves it.
        self.net.release_route(id, &old_route);
        let new_route = self.route_for(to);
        {
            let c = self.net.get_mut(id).expect("invariant: live connection");
            c.route = new_route;
            c.cell = to;
            c.b_current = b_min;
        }
        let req = AdmissionRequest {
            conn: id,
            discipline: self.cfg.discipline,
            mobility: MobilityClass::Mobile,
            kind: if claims_usable {
                RequestKind::Handoff
            } else {
                // Without signalling even the connection's own predicted
                // claim is unreachable.
                RequestKind::New
            },
        };
        if admit(&mut self.net, req).is_ok() {
            let c = self.net.get_mut(id).expect("invariant: live connection");
            c.handoffs += 1;
            return true;
        }
        if !claims_usable {
            self.net.finish(id, ConnectionState::Dropped);
            return false;
        }
        // Draw down consumable aggregate claims, most specific first.
        let wl = self.net.topology().wireless_link(to);
        for (key, source) in [
            (ResvClaim::Cell(to), ClaimSource::CellTo),
            (ResvClaim::Cell(from), ClaimSource::CellFrom),
            (ResvClaim::DynPool, ClaimSource::DynPool),
        ] {
            let available = self.net.link(wl).claim(key);
            if available <= 0.0 {
                continue;
            }
            let drawn = available.min(b_min);
            self.net.link_mut(wl).set_claim(key, available - drawn);
            if admit(
                &mut self.net,
                AdmissionRequest {
                    conn: id,
                    discipline: self.cfg.discipline,
                    mobility: MobilityClass::Mobile,
                    kind: RequestKind::Handoff,
                },
            )
            .is_ok()
            {
                self.metrics.claims_consumed.incr();
                self.obs.emit_with(|| ObsEvent::ClaimConsumed {
                    t: now,
                    cell: to,
                    conn: id,
                    kbps: drawn,
                    source,
                });
                let c = self.net.get_mut(id).expect("invariant: live connection");
                c.handoffs += 1;
                return true;
            }
            // Put the drawn amount back; it didn't help.
            let cur = self.net.link(wl).claim(key);
            self.net.link_mut(wl).set_claim(key, cur + drawn);
        }
        self.net.finish(id, ConnectionState::Dropped);
        false
    }

    /// Route from a cell's air interface to the backbone hub.
    fn route_for(&self, cell: CellId) -> Route {
        shortest_path(
            self.net.topology(),
            self.net.topology().air_node(cell),
            self.server_node,
        )
        .expect("invariant: star backbone is connected")
    }

    fn is_meeting_room(&self, c: CellId) -> bool {
        matches!(
            self.env.cell(c).class,
            CellClass::Lounge(LoungeKind::MeetingRoom)
        )
    }

    // ------------------------------------------------------------------
    // Claim refresh
    // ------------------------------------------------------------------

    /// Dirty a connection's current route in the resident maxmin engine.
    ///
    /// Called at every admit/release/handoff/failure site. Correctness
    /// does not hinge on these marks — `resolve_network_incremental`
    /// diff-syncs the engine against the ledgers before each round — but
    /// eager marks keep the dirty set honest while the eqn-2 gate holds
    /// adaptation closed across several events.
    fn mark_conn_dirty(&mut self, id: ConnId) {
        if !self.cfg.incremental {
            return;
        }
        if let Some(c) = self.net.get(id) {
            for l in c.route.links.clone() {
                self.maxmin.touch_link(l);
            }
        }
    }

    /// Dirty one link in the resident maxmin engine.
    fn mark_link_dirty(&mut self, l: LinkId) {
        if self.cfg.incremental {
            self.maxmin.touch_link(l);
        }
    }

    fn after_event(&mut self, now: SimTime) {
        self.refresh_claims(now);
        if self.cfg.resolve_excess && self.adaptation_triggered() {
            self.adaptation_rounds += 1;
            let round_tok = self.obs.phase_start(now);
            let stats_before = self.maxmin.stats;
            let statics: std::collections::BTreeSet<PortableId> = self
                .portables
                .iter()
                .filter(|(_, s)| StaticMobileTest::new(self.cfg.t_th).is_static(s.entered_at, now))
                .map(|(p, _)| *p)
                .collect();
            let is_static = move |p: PortableId| statics.contains(&p);
            if self.cfg.incremental {
                arm_qos::conflict::resolve_network_incremental(
                    &mut self.net,
                    &is_static,
                    &mut self.maxmin,
                );
            } else {
                arm_qos::conflict::resolve_network_with_policy(&mut self.net, &is_static);
            }
            let phase = if self.cfg.incremental {
                Phase::MaxminIncremental
            } else {
                Phase::MaxminFull
            };
            self.obs.phase_end(phase, round_tok, now);
            let incremental = self.cfg.incremental;
            let stats_after = self.maxmin.stats;
            self.obs.emit_with(|| ObsEvent::MaxminRound {
                t: now,
                incremental,
                conns_resolved: stats_after.conns_resolved - stats_before.conns_resolved,
                conns_reused: stats_after.conns_reused - stats_before.conns_reused,
                cause: "eqn2-adaptation".to_string(),
            });
            // Record the post-round excess as eqn 2's t⁻ state.
            let cells: Vec<CellId> = self.env.cells().map(|(id, _)| id).collect();
            for c in cells {
                let wl = self.net.topology().wireless_link(c);
                self.last_excess
                    .insert(wl, self.net.link(wl).excess_available());
            }
        }
        debug_assert!(self.net.check_invariants().is_ok());
    }

    /// The eqn-2 trigger across all wireless links: shrinkage always
    /// fires; growth fires only when it exceeds δ and some connection on
    /// the link could use it (`M(l) ≠ ∅`).
    fn adaptation_triggered(&self) -> bool {
        use arm_qos::adaptation::{decide, AdaptDecision};
        for (cell, _) in self.env.cells() {
            let wl = self.net.topology().wireless_link(cell);
            let new_excess = self.net.link(wl).excess_available();
            let prev_excess = match self.last_excess.get(&wl) {
                Some(v) => *v,
                None => return true, // first sight of this link
            };
            let shares: f64 = self
                .net
                .conns_on_link(wl)
                .map(|c| (c.b_current - c.qos.b_min).max(0.0))
                .sum();
            let unsatisfied = self
                .net
                .conns_on_link(wl)
                .any(|c| c.b_current < c.qos.b_max - 1e-9);
            match decide(prev_excess, new_excess, shares, unsatisfied, self.cfg.delta) {
                AdaptDecision::None => {}
                _ => return true,
            }
        }
        false
    }

    /// Recompute every advance claim from current state.
    fn refresh_claims(&mut self, now: SimTime) {
        let refresh_tok = self.obs.phase_start(now);
        // Wipe all wireless-link claims the manager owns. The Channel
        // claim is the channel monitor's and the Outage claim the fault
        // path's — both model capacity that does not exist right now and
        // survive every refresh.
        let cells: Vec<CellId> = self.env.cells().map(|(id, _)| id).collect();
        for c in &cells {
            let wl = self.net.topology().wireless_link(*c);
            let keys: Vec<ResvClaim> = self
                .net
                .link(wl)
                .claims()
                .map(|(k, _)| k)
                .filter(|k| *k != ResvClaim::Channel && *k != ResvClaim::Outage)
                .collect();
            for k in keys {
                self.net.link_mut(wl).release_claim(k);
            }
        }
        // Re-tighten the outage seals before installing any advance
        // claims: terminations during an outage must not open phantom
        // headroom on a dead link, and a sealed link grants 0 to every
        // claim set after it.
        let down: Vec<LinkId> = self.down_links.iter().copied().collect();
        for l in down {
            self.seal_failed_link(l);
        }
        match self.cfg.strategy {
            Strategy::None => {}
            Strategy::Paper => self.refresh_paper(now),
            Strategy::BruteForce => self.refresh_brute_force(),
            Strategy::Aggregate => self.refresh_aggregate(),
            Strategy::StaticFraction(f) => {
                for c in &cells {
                    let wl = self.net.topology().wireless_link(*c);
                    let amount = self.net.link(wl).capacity() * f;
                    self.net.link_mut(wl).set_claim(ResvClaim::Cell(*c), amount);
                }
            }
        }
        self.obs.phase_end(Phase::ClaimRefresh, refresh_tok, now);
    }

    /// The paper's strategy: per-portable claims via the §6.4 dispatcher,
    /// lounge aggregate claims via the class policies, plus `B_dyn`.
    fn refresh_paper(&mut self, now: SimTime) {
        // Per-portable claims (mobile portables only).
        let test = StaticMobileTest::new(self.cfg.t_th);
        let portables: Vec<(PortableId, PortableState)> =
            self.portables.iter().map(|(p, s)| (*p, *s)).collect();
        for (p, state) in &portables {
            if test.is_static(state.entered_at, now) {
                continue; // B_dyn covers sudden movement of statics
            }
            let floors: Vec<(ConnId, f64)> = self
                .net
                .connections_of_portable(*p)
                .map(|c| (c.id, c.qos.b_min))
                .collect();
            if floors.is_empty() {
                continue;
            }
            if self.zone_down(state.cell) {
                // Stale-profile fallback: the zone's profile server is
                // out, so neither occupancy nor a movement prediction
                // can be read. Reserve the portable's floors
                // probabilistically — spread evenly over all neighbours,
                // the default algorithm's no-history behaviour — rather
                // than not at all.
                self.stale_profile_fallbacks += 1;
                let total: f64 = floors.iter().map(|(_, b)| b).sum();
                self.spread_evenly(state.cell, total);
                continue;
            }
            let class = self.env.cell(state.cell).class;
            let is_occupant = self
                .profiles
                .cell(state.cell)
                .is_some_and(|cp| cp.is_occupant(*p));
            let prediction = self.profiles.predict_at(*p, state.prev_cell, state.cell);
            match decide_traced(class, is_occupant, prediction, now, *p, &mut self.obs) {
                ReservationDecision::PerConnection(target) => {
                    if target != state.cell {
                        let wl = self.net.topology().wireless_link(target);
                        for (id, b) in &floors {
                            self.net.link_mut(wl).set_claim(ResvClaim::Conn(*id), *b);
                        }
                    }
                }
                ReservationDecision::NoReservation
                | ReservationDecision::ClassPolicy
                | ReservationDecision::DefaultAlgorithm => {}
            }
        }
        // Lounge class policies.
        self.refresh_lounge_claims(now);
        // B_dyn pools.
        if let Some(policy) = self.cfg.dyn_pool {
            let test = StaticMobileTest::new(self.cfg.t_th);
            let statics: std::collections::BTreeSet<PortableId> = self
                .portables
                .iter()
                .filter(|(_, s)| test.is_static(s.entered_at, now))
                .map(|(p, _)| *p)
                .collect();
            let cells: Vec<CellId> = self.env.cells().map(|(id, _)| id).collect();
            for c in cells {
                let neighbors: Vec<CellId> = self.env.neighbors(c).collect();
                let is_static = |p: PortableId| statics.contains(&p);
                arm_qos::adaptation::adjust_dyn_pool(
                    &mut self.net,
                    c,
                    &neighbors,
                    &is_static,
                    policy,
                );
            }
        }
    }

    /// Aggregate claims from the lounge policies (meeting calendar,
    /// cafeteria least-squares, default one-step).
    fn refresh_lounge_claims(&mut self, now: SimTime) {
        // Meeting rooms.
        let meeting_cells: Vec<CellId> = self.meeting_policies.keys().copied().collect();
        for m in meeting_cells {
            let (room, neighbor) = {
                let policy = self
                    .meeting_policies
                    .get_mut(&m)
                    .expect("invariant: registered");
                (policy.room_demand(now), policy.neighbor_demand(now))
            };
            if room > 0.0 {
                let wl = self.net.topology().wireless_link(m);
                self.net.link_mut(wl).set_claim(ResvClaim::Cell(m), room);
            }
            if neighbor > 0.0 {
                self.spread_to_neighbors(m, neighbor);
            }
        }
        // Cafeterias and default lounges: predicted outbound handoffs.
        let caf: Vec<(CellId, f64)> = self
            .cafeteria_pred
            .iter()
            .map(|(c, p)| (*c, p.predict()))
            .collect();
        let def: Vec<(CellId, f64)> = self
            .default_pred
            .iter()
            .map(|(c, p)| (*c, p.predict()))
            .collect();
        for (c, predicted) in caf.into_iter().chain(def) {
            let demand = predicted * self.cfg.per_user_kbps;
            if demand > 0.0 {
                self.spread_to_neighbors(c, demand);
            }
        }
    }

    /// Split an aggregate demand from `source` over its neighbours by the
    /// profile transition row (even split without history), installing
    /// `Cell(source)` claims.
    fn spread_to_neighbors(&mut self, source: CellId, demand: f64) {
        let neighbors: Vec<CellId> = self.env.neighbors(source).collect();
        if neighbors.is_empty() {
            return;
        }
        // A profile-server outage hides the transition row; the empty
        // row below degrades to the even split.
        let row = if self.zone_down(source) {
            Default::default()
        } else {
            self.profiles
                .cell(source)
                .map(arm_profiles::CellProfile::aggregate_row)
                .unwrap_or_default()
        };
        let known: f64 = neighbors.iter().filter_map(|n| row.get(n)).sum();
        for n in &neighbors {
            let share = if known > 0.0 {
                row.get(n).copied().unwrap_or(0.0) / known
            } else {
                1.0 / neighbors.len() as f64
            };
            let amount = demand * share;
            if amount > 0.0 {
                let wl = self.net.topology().wireless_link(*n);
                let cur = self.net.link(wl).claim(ResvClaim::Cell(source));
                self.net
                    .link_mut(wl)
                    .set_claim(ResvClaim::Cell(source), cur + amount);
            }
        }
    }

    /// Even-split spread used when profile data is unavailable (zone
    /// profile-server outage): no transition row can be read, so the
    /// demand is divided uniformly over the neighbours.
    fn spread_evenly(&mut self, source: CellId, demand: f64) {
        let neighbors: Vec<CellId> = self.env.neighbors(source).collect();
        if neighbors.is_empty() || demand <= 0.0 {
            return;
        }
        let share = demand / neighbors.len() as f64;
        for n in neighbors {
            let wl = self.net.topology().wireless_link(n);
            let cur = self.net.link(wl).claim(ResvClaim::Cell(source));
            self.net
                .link_mut(wl)
                .set_claim(ResvClaim::Cell(source), cur + share);
        }
    }

    fn refresh_brute_force(&mut self) {
        let demands = self.mobile_demands();
        for (p, cell) in demands {
            let floors: Vec<(ConnId, f64)> = self
                .net
                .connections_of_portable(p)
                .map(|c| (c.id, c.qos.b_min))
                .collect();
            let neighbors: Vec<CellId> = self.env.neighbors(cell).collect();
            for n in neighbors {
                let wl = self.net.topology().wireless_link(n);
                for (id, b) in &floors {
                    self.net.link_mut(wl).set_claim(ResvClaim::Conn(*id), *b);
                }
            }
        }
    }

    fn refresh_aggregate(&mut self) {
        let demands = self.mobile_demands();
        for (p, cell) in demands {
            let total: f64 = self
                .net
                .connections_of_portable(p)
                .map(|c| c.qos.b_min)
                .sum();
            if total > 0.0 {
                self.spread_to_neighbors(cell, total);
            }
        }
    }

    /// Every portable with live connections and its cell (the baselines
    /// reserve for all of them, making no static/mobile distinction —
    /// which is exactly their weakness). Ordered by when each portable
    /// entered its current cell: reservations are first-come-first-served,
    /// so when a link's claim headroom runs out, the latest movers lose —
    /// exactly the race that drops late classroom arrivals under the
    /// brute-force scheme.
    fn mobile_demands(&self) -> Vec<(PortableId, CellId)> {
        let mut v: Vec<(SimTime, PortableId, CellId)> = self
            .portables
            .iter()
            .filter(|(p, _)| self.net.connections_of_portable(**p).next().is_some())
            .map(|(p, s)| (s.entered_at, *p, s.cell))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        v.into_iter().map(|(_, p, c)| (p, c)).collect()
    }
}

#[cfg(test)]
#[path = "manager_tests.rs"]
mod tests;
