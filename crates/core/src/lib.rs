// Panic discipline: unwraps/expects are banned in library code. The
// audited exceptions (`invariant:`/`precondition:` messages, enforced
// by the arm-check `no-panic` lint) live in files that opt out with a
// file-level `#![allow(clippy::expect_used)]`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # arm-core — the integrated resource manager
//!
//! Composes every piece of the paper's Figure 1 into one system:
//! admission control and conflict resolution (`arm-qos`), the
//! static/mobile test and QoS adaptation policy, profile maintenance and
//! three-level next-cell prediction (`arm-profiles`), per-class advance
//! reservation with consumable claims (`arm-reservation`), and the
//! dynamically adjustable pool `B_dyn` — all driven by mobility traces
//! and connection workloads (`arm-mobility`) on the discrete-event kernel
//! (`arm-sim`).
//!
//! * [`manager`] — [`ResourceManager`]: the per-event control plane
//!   (connection requests, handoffs, terminations, slot ticks),
//! * [`strategy`] — which advance-reservation scheme runs: the paper's
//!   profile-based algorithm or one of the §7 baselines,
//! * [`multicast`] — §4's wired-backbone multicast pre-setup toward a
//!   mobile's neighbouring cells (failures non-fatal, per the paper),
//! * [`metrics`] — `P_b`, `P_d`, utilisation, per-slot activity,
//! * [`driver`] — end-to-end experiment drivers for §7.1 (office
//!   prediction), Figure 5 (meeting room), and Figure 6 (probabilistic
//!   default algorithm),
//! * [`chaos`] — the fault-injection harness: replays a seeded
//!   `arm_sim::FaultSchedule` (link outages, profile-server outages,
//!   control-plane loss windows, handoff-signalling failures) against a
//!   scenario run and asserts the degradation invariants after every
//!   event.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod driver;
pub mod error;
pub mod manager;
pub mod metrics;
pub mod multicast;
pub mod scenario;
pub mod snapshot;
pub mod strategy;

pub use error::ControlError;
pub use manager::{ManagerConfig, ResourceManager};
pub use metrics::Metrics;
pub use scenario::{Scenario, ScenarioReport};
pub use snapshot::{ManagerSnapshot, SnapshotError, SNAPSHOT_SCHEMA_VERSION};
pub use strategy::Strategy;
