//! Chaos harness: replay a [`FaultSchedule`] against a scenario run.
//!
//! The fault layer (`arm_sim::faults`) emits time-sorted, seeded fault
//! events over opaque `u32` indices. This module maps those indices onto
//! the scenario's concrete links, zones, and portables, interleaves the
//! fault events with the mobility trace, and drives the manager's fault
//! entry points — asserting the degradation invariants after **every**
//! event:
//!
//! * the network ledger stays consistent (no oversubscription,
//!   `Σ b_min + b_resv ≤ C` on every link),
//! * every live connection keeps at least its guaranteed floor `b_min`,
//! * a control-plane degradation window leaves the distributed maxmin
//!   protocol able to converge to the centralized oracle despite packet
//!   loss and reordering.
//!
//! [`scenario::run`](crate::scenario::run) delegates here with the empty
//! schedule, so a fault-free run takes exactly the same code path (and
//! produces bit-identical reports) whether or not the chaos layer is
//! compiled in the loop — the fault machinery costs nothing when the
//! schedule is empty.

use std::collections::{BTreeMap, BTreeSet};

use arm_mobility::WorkloadMix;
use arm_net::ids::{ConnId, LinkId, PortableId, ZoneId};
use arm_obs::{ChaosSummary, Obs};
use arm_qos::maxmin::centralized::{ConnDemand, MaxminProblem};
use arm_qos::maxmin::distributed::{DistributedMaxmin, Ev, Variant};
use arm_sim::{
    Engine, FaultEvent, FaultKind, FaultSchedule, SimDuration, SimRng, SimTime, StopCondition,
};

use crate::error::ControlError;
use crate::manager::ResourceManager;
use crate::scenario::{build_manager, Scenario, ScenarioReport, WorkloadSpec};

/// What a faulted run produced, beyond the ordinary report.
#[derive(Clone, Debug)]
#[must_use]
pub struct ChaosOutcome {
    /// The ordinary scenario report.
    pub report: ScenarioReport,
    /// Fault events applied.
    pub faults_applied: usize,
    /// Invariant sweeps performed (one per event when faults are on).
    pub invariant_checks: u64,
    /// Lossy distributed-maxmin convergence checks run (one per
    /// control-degradation window).
    pub lossy_maxmin_checks: u64,
    /// Link failures the manager processed.
    pub link_failures: u64,
    /// Stale-profile fallback reservations made.
    pub stale_profile_fallbacks: u64,
    /// Handoffs processed without signalling.
    pub handoff_signalling_failures: u64,
    /// Profile updates lost to server outages.
    pub lost_profile_updates: u64,
}

impl ChaosOutcome {
    /// This outcome as the run-report chaos section. `schedules` is the
    /// number of independent fault schedules the caller replayed to
    /// produce it (1 for a single [`run_with_faults`] call).
    pub fn summary(&self, schedules: u64) -> ChaosSummary {
        ChaosSummary {
            schedules,
            faults_applied: self.faults_applied as u64,
            invariant_checks: self.invariant_checks,
            lossy_maxmin_checks: self.lossy_maxmin_checks,
            link_failures: self.link_failures,
            stale_profile_fallbacks: self.stale_profile_fallbacks,
            handoff_signalling_failures: self.handoff_signalling_failures,
            lost_profile_updates: self.lost_profile_updates,
        }
    }
}

/// Maps the schedule's opaque indices onto the scenario's entities.
struct FaultMap {
    links: u32,
    zones: u32,
    portables: Vec<PortableId>,
}

impl FaultMap {
    fn link(&self, idx: u32) -> Option<LinkId> {
        (self.links > 0).then(|| LinkId(idx % self.links))
    }

    fn zone(&self, idx: u32) -> Option<ZoneId> {
        // Zones are numbered contiguously from 0 by the environment
        // builders.
        (self.zones > 0).then(|| ZoneId(idx % self.zones))
    }

    fn portable(&self, idx: u32) -> Option<PortableId> {
        if self.portables.is_empty() {
            return None;
        }
        Some(self.portables[idx as usize % self.portables.len()])
    }
}

/// Run a scenario with a fault schedule interleaved, asserting the
/// degradation invariants after every event. With the empty schedule
/// this is exactly [`scenario::run`](crate::scenario::run) (same event
/// order, same RNG draws, bit-identical report) and no invariant sweeps
/// are performed.
///
/// Invariant violations panic — they are bugs in the resource manager,
/// not inputs; [`ControlError`] covers only malformed scenarios.
pub fn run_with_faults(
    sc: &Scenario,
    faults: &FaultSchedule,
) -> Result<ChaosOutcome, ControlError> {
    run_with_faults_obs(sc, faults, Obs::off()).map(|(out, _)| out)
}

/// [`run_with_faults`] with a trace observer installed in the resource
/// manager for the duration of the run. Returns the observer alongside
/// the outcome so callers can read its event counts, phase timers, and
/// sink snapshot. Passing [`Obs::off()`] is exactly [`run_with_faults`]:
/// observation is strictly passive, so the outcome is bit-identical
/// whatever observer is installed (asserted by
/// `tests/obs_differential.rs`).
pub fn run_with_faults_obs(
    sc: &Scenario,
    faults: &FaultSchedule,
    obs: Obs,
) -> Result<(ChaosOutcome, Obs), ControlError> {
    let (mut mgr, trace) = build_manager(sc)?;
    mgr.set_obs(obs);
    let checking = !faults.is_empty();
    let map = FaultMap {
        links: mgr.net.topology().link_count() as u32,
        zones: mgr.profiles.zone_count().max(1) as u32,
        portables: {
            let set: BTreeSet<PortableId> = trace.events().iter().map(|e| e.portable).collect();
            set.into_iter().collect()
        },
    };

    let mut rng = SimRng::new(sc.seed).split("scenario-workload");
    let mix = WorkloadMix::paper71();
    let mut open: BTreeMap<PortableId, ConnId> = BTreeMap::new();
    let mut next_slot = SimTime::ZERO + SimDuration::from_mins(1);
    let mut moves = 0u64;
    let mut faults_applied = 0usize;
    let mut invariant_checks = 0u64;
    let mut lossy_maxmin_checks = 0u64;
    let mut pending = faults.events().iter().peekable();
    // A portable's connection ends at its final trace event — the user
    // walks out of the modelled area (finite traces would otherwise pile
    // up phantom load at the map's edges).
    let mut last_event: BTreeMap<PortableId, SimTime> = BTreeMap::new();
    for ev in trace.events() {
        last_event.insert(ev.portable, ev.time);
    }
    let apply =
        |mgr: &mut ResourceManager, f: &FaultEvent, faults_applied: &mut usize, lossy: &mut u64| {
            *faults_applied += 1;
            match f.kind {
                FaultKind::LinkDown { link } => {
                    if let Some(l) = map.link(link) {
                        mgr.link_failed(l, f.time);
                    }
                }
                FaultKind::LinkUp { link } => {
                    if let Some(l) = map.link(link) {
                        mgr.link_restored(l, f.time);
                    }
                }
                FaultKind::ProfileServerDown { zone } => {
                    if let Some(z) = map.zone(zone) {
                        mgr.profile_server_down(z, f.time);
                    }
                }
                FaultKind::ProfileServerUp { zone } => {
                    if let Some(z) = map.zone(zone) {
                        mgr.profile_server_up(z, f.time);
                    }
                }
                FaultKind::HandoffSignallingFailure { portable } => {
                    if let Some(p) = map.portable(portable) {
                        mgr.fail_next_handoff(p);
                    }
                }
                FaultKind::ControlDegradeStart { loss, delay_prob } => {
                    *lossy += 1;
                    lossy_maxmin_check(mgr, sc.seed ^ *lossy, loss, delay_prob);
                }
                FaultKind::ControlDegradeEnd => {}
            }
        };

    for ev in trace.events() {
        // Faults due at or before this trace event land first, each at
        // its own timestamp.
        while let Some(f) = pending.peek() {
            if f.time > ev.time {
                break;
            }
            apply(&mut mgr, f, &mut faults_applied, &mut lossy_maxmin_checks);
            if checking {
                invariant_checks += 1;
                assert_invariants(&mgr, &format!("fault {:?}", f.kind));
            }
            pending.next();
        }
        while ev.time >= next_slot {
            mgr.slot_tick(next_slot);
            next_slot += SimDuration::from_mins(1);
        }
        match ev.from {
            None => {
                mgr.portable_appears(ev.portable, ev.to, ev.time);
                let qos = match &sc.workload {
                    WorkloadSpec::Paper71 => Some(mix.sample(&mut rng)),
                    WorkloadSpec::Fixed { kbps } => Some(
                        arm_net::flowspec::QosRequest::fixed(*kbps)
                            .with_delay(30.0)
                            .with_jitter(30.0)
                            .with_loss(1.0),
                    ),
                    WorkloadSpec::None => None,
                };
                if let Some(q) = qos {
                    if let Ok(id) = mgr.request_connection(ev.portable, q, ev.time) {
                        open.insert(ev.portable, id);
                    }
                }
            }
            Some(_) => {
                moves += 1;
                for id in mgr.portable_moved(ev.portable, ev.to, ev.time) {
                    open.retain(|_, c| *c != id);
                }
            }
        }
        if last_event[&ev.portable] == ev.time {
            if let Some(id) = open.remove(&ev.portable) {
                mgr.terminate(id, ev.time);
            }
        }
        if checking {
            invariant_checks += 1;
            assert_invariants(&mgr, &format!("move of {:?}", ev.portable));
        }
    }
    // Faults past the end of the trace still fire (e.g. the matching
    // LinkUp of a late outage).
    for f in pending {
        apply(&mut mgr, f, &mut faults_applied, &mut lossy_maxmin_checks);
        if checking {
            invariant_checks += 1;
            assert_invariants(&mgr, &format!("trailing fault {:?}", f.kind));
        }
    }

    let outcome = ChaosOutcome {
        report: ScenarioReport {
            name: sc.name.clone(),
            strategy: sc.strategy.label(),
            requests: mgr.metrics.requests.get(),
            blocked: mgr.metrics.blocked.get(),
            handoff_attempts: mgr.metrics.handoff_attempts.get(),
            dropped: mgr.metrics.dropped.get(),
            p_b: mgr.metrics.p_b(),
            p_d: mgr.metrics.p_d(),
            claims_consumed: mgr.metrics.claims_consumed.get(),
            moves,
        },
        faults_applied,
        invariant_checks,
        lossy_maxmin_checks,
        link_failures: mgr.link_failures,
        stale_profile_fallbacks: mgr.stale_profile_fallbacks,
        handoff_signalling_failures: mgr.handoff_signalling_failures,
        lost_profile_updates: mgr.lost_profile_updates,
    };
    Ok((outcome, mgr.take_obs()))
}

/// The degradation invariants, checked after every event of a faulted
/// run: ledger consistency (which includes no oversubscription) and the
/// guaranteed floor of every live connection.
fn assert_invariants(mgr: &ResourceManager, context: &str) {
    if let Err(e) = mgr.net.check_invariants() {
        panic!("invariant: ledger conservation violated after {context}: {e}");
    }
    for c in mgr.net.live_connections() {
        assert!(
            c.b_current >= c.qos.b_min - 1e-6,
            "live connection {:?} below its floor after {context}: {} < {}",
            c.id,
            c.b_current,
            c.qos.b_min
        );
    }
}

/// A control-plane degradation window opened: verify that the
/// distributed maxmin protocol, run over a snapshot of the current
/// network with this window's loss/delay probabilities injected, still
/// drains its queue and converges to the centralized oracle. This is the
/// chaos-side exercise of the retransmission machinery in
/// `arm_qos::maxmin::distributed`.
fn lossy_maxmin_check(mgr: &ResourceManager, seed: u64, loss: f64, delay_prob: f64) {
    let mut p = MaxminProblem::default();
    for c in mgr.net.live_connections() {
        let mut links = c.route.links.clone();
        links.sort_unstable();
        links.dedup();
        p.conns.insert(
            c.id,
            ConnDemand {
                demand: c.qos.b_max,
                links,
            },
        );
    }
    if p.conns.is_empty() {
        return;
    }
    // The re-allocation problem over full rates: each traversed link
    // offers what is not held back by advance claims.
    let links: BTreeSet<LinkId> = p
        .conns
        .values()
        .flat_map(|d| d.links.iter().copied())
        .collect();
    for l in links {
        let ls = mgr.net.link(l);
        p.link_excess
            .insert(l, (ls.capacity() - ls.b_resv()).max(0.0));
    }
    let expect = p.solve();
    let mut proto = DistributedMaxmin::new(Variant::Refined, SimDuration::from_millis(1));
    proto.set_control_faults(seed, loss, delay_prob);
    for (l, cap) in &p.link_excess {
        proto.add_link(*l, *cap);
    }
    for (cid, d) in &p.conns {
        proto.add_conn(*cid, d.links.clone(), d.demand);
    }
    let mut engine = Engine::new(proto).with_event_budget(5_000_000);
    for (l, cap) in &p.link_excess {
        engine.schedule_at(
            SimTime::ZERO,
            Ev::ChangeExcess {
                link: *l,
                excess: *cap,
            },
        );
    }
    let stop = engine.run();
    assert_eq!(
        stop,
        StopCondition::QueueEmpty,
        "lossy maxmin exhausted its event budget (loss={loss}, delay={delay_prob})"
    );
    assert!(engine.model().is_quiescent(), "maxmin left non-quiescent");
    for (cid, want) in &expect {
        let got = engine.model().rates().get(cid).copied().unwrap_or(0.0);
        assert!(
            (got - want).abs() < 1e-6,
            "{cid:?}: lossy distributed maxmin got {got}, oracle says {want}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;
    use arm_sim::FaultScheduleParams;

    fn office_scenario(seed: u64) -> Scenario {
        Scenario {
            name: "chaos-office".into(),
            environment: scenario::EnvSpec::Figure4,
            mobility: scenario::MobilitySpec::OfficeCase,
            workload: WorkloadSpec::Paper71,
            strategy: crate::Strategy::Paper,
            cell_throughput_kbps: 1600.0,
            backbone_kbps: 100_000.0,
            wireless_error: 0.0,
            t_th_secs: 300,
            seed,
        }
    }

    #[test]
    fn empty_schedule_is_bit_identical_to_the_plain_run() {
        let sc = office_scenario(7);
        let plain = scenario::run(&sc).expect("valid scenario");
        let chaos = run_with_faults(&sc, &FaultSchedule::empty()).expect("valid scenario");
        assert_eq!(format!("{plain:?}"), format!("{:?}", chaos.report));
        assert_eq!(chaos.faults_applied, 0);
        assert_eq!(chaos.invariant_checks, 0);
    }

    #[test]
    fn faulted_office_case_survives_one_schedule() {
        let sc = office_scenario(11);
        let params = FaultScheduleParams {
            span: SimDuration::from_mins(40 * 60), // the §7.1 workweek
            links: 20,
            zones: 1,
            portables: 30,
            ..FaultScheduleParams::default()
        };
        let sched = FaultSchedule::generate(&params, &arm_sim::SimRng::new(99));
        let out = run_with_faults(&sc, &sched).expect("valid scenario");
        assert_eq!(out.faults_applied, sched.len());
        assert!(out.invariant_checks > 0);
        assert!(out.link_failures > 0);
    }
}
