//! Multicast pre-setup on the wired backbone (§4).
//!
//! "To reduce transient behavior of connections to a mobile upon handoff,
//! the backbone network will also set up multicast routes for the
//! connection in all neighboring cells so that the network can multicast
//! the packets to the pre-allocated buffer space in these neighbors. To
//! set up these multicast routes on the wired network, end-to-end
//! admission control test\[s\] and associated resource reservation are also
//! performed for them. However, the failure of the end-to-end test along
//! any route will not cause the forced termination of the connection."
//!
//! Mechanically: for a mobile portable's connection homed in cell `c`,
//! the manager reserves, along the *wired* part of a route to each
//! neighbour's base station, the connection's floor plus buffer — under a
//! dedicated multicast claim so the wireless media of the neighbours are
//! untouched (those are governed by the advance-reservation claims).
//! Failures are recorded but non-fatal, exactly per the paper.

use std::collections::BTreeMap;

use arm_net::ids::{CellId, ConnId, LinkId};
use arm_net::link::ResvClaim;
use arm_net::routing::shortest_path;
use arm_net::Network;
use serde::{Deserialize, Serialize};

/// The wired legs currently reserved for one connection's multicast
/// fan-out: neighbour cell → wired links of the branch.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MulticastState {
    branches: BTreeMap<ConnId, BTreeMap<CellId, Vec<LinkId>>>,
    /// Branch set-up attempts that failed admission (non-fatal).
    pub failed_branches: u64,
    /// Branches currently established.
    pub active_branches: usize,
}

impl MulticastState {
    /// Fresh, empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// (Re)establish the multicast branches for `conn`, homed in `cell`,
    /// toward `neighbors`. Existing branches are torn down first (the
    /// neighbour set changes with every handoff). Reserves `b_min` on the
    /// *wired* links of each branch under [`ResvClaim::Conn`]; the
    /// wireless media are deliberately excluded.
    pub fn establish(
        &mut self,
        net: &mut Network,
        conn: ConnId,
        cell: CellId,
        b_min: f64,
        neighbors: &[CellId],
    ) {
        self.teardown(net, conn);
        let src = net.topology().base_station(cell);
        let mut branches = BTreeMap::new();
        for n in neighbors {
            let dst = net.topology().base_station(*n);
            let Some(route) = shortest_path(net.topology(), src, dst) else {
                self.failed_branches += 1;
                continue;
            };
            // Admission on the wired legs only: every link must fit the
            // floor beside its existing floors and claims.
            let wired: Vec<LinkId> = route
                .links
                .iter()
                .copied()
                .filter(|l| net.topology().link(*l).wireless_cell.is_none())
                .collect();
            let ok = wired.iter().all(|l| net.link(*l).admits(b_min));
            if !ok {
                self.failed_branches += 1;
                continue;
            }
            for l in &wired {
                let cur = net.link(*l).claim(ResvClaim::Conn(conn));
                net.link_mut(*l)
                    .set_claim(ResvClaim::Conn(conn), cur + b_min);
            }
            branches.insert(*n, wired);
        }
        self.active_branches += branches.len();
        if !branches.is_empty() {
            self.branches.insert(conn, branches);
        }
    }

    /// Tear down every branch of `conn` (termination, drop, or before
    /// re-establishing after a handoff).
    pub fn teardown(&mut self, net: &mut Network, conn: ConnId) {
        if let Some(branches) = self.branches.remove(&conn) {
            for (_, links) in branches {
                self.active_branches = self.active_branches.saturating_sub(1);
                for l in links {
                    net.link_mut(l).release_claim(ResvClaim::Conn(conn));
                }
            }
        }
    }

    /// The neighbours currently receiving `conn`'s multicast.
    pub fn branches_of(&self, conn: ConnId) -> Vec<CellId> {
        self.branches
            .get(&conn)
            .map(|b| b.keys().copied().collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm_mobility::environment::Figure4;

    fn setup() -> (Network, Figure4) {
        let f4 = Figure4::build();
        // Modest backbone so multicast reservations can actually fail.
        let net = f4.env.build_network(1600.0, 0.0, 1000.0);
        (net, f4)
    }

    #[test]
    fn branches_reserve_only_wired_links() {
        let (mut net, f4) = setup();
        let mut mc = MulticastState::new();
        let conn = ConnId(0);
        let neighbors: Vec<CellId> = f4.env.neighbors(f4.d).collect();
        mc.establish(&mut net, conn, f4.d, 64.0, &neighbors);
        assert_eq!(mc.branches_of(conn).len(), neighbors.len());
        // Wireless media untouched.
        for (cell, _) in f4.env.cells() {
            let wl = net.topology().wireless_link(cell);
            assert_eq!(net.link(wl).claim(ResvClaim::Conn(conn)), 0.0);
        }
        // Wired links toward each neighbour hold the claim.
        let dst = net.topology().base_station(f4.a);
        let src = net.topology().base_station(f4.d);
        let route = shortest_path(net.topology(), src, dst).expect("connected");
        let wired: Vec<LinkId> = route
            .links
            .iter()
            .copied()
            .filter(|l| net.topology().link(*l).wireless_cell.is_none())
            .collect();
        assert!(!wired.is_empty());
        for l in wired {
            assert!(net.link(l).claim(ResvClaim::Conn(conn)) >= 64.0);
        }
        assert!(net.check_invariants().is_ok());
    }

    #[test]
    fn reestablish_moves_branches_with_the_portable() {
        let (mut net, f4) = setup();
        let mut mc = MulticastState::new();
        let conn = ConnId(0);
        let n_d: Vec<CellId> = f4.env.neighbors(f4.d).collect();
        mc.establish(&mut net, conn, f4.d, 64.0, &n_d);
        let before = mc.branches_of(conn);
        assert!(before.contains(&f4.a));
        // Handoff D → E: branches now cover E's neighbours only.
        let n_e: Vec<CellId> = f4.env.neighbors(f4.e).collect();
        mc.establish(&mut net, conn, f4.e, 64.0, &n_e);
        let after = mc.branches_of(conn);
        assert!(after.contains(&f4.b));
        assert!(!after.contains(&f4.a));
        // No leaked claims on the old branches beyond the new ones.
        mc.teardown(&mut net, conn);
        for i in 0..net.topology().link_count() {
            let l = LinkId::from_index(i);
            assert_eq!(net.link(l).claim(ResvClaim::Conn(conn)), 0.0, "{l:?}");
        }
        assert!(net.check_invariants().is_ok());
    }

    #[test]
    fn branch_failure_is_nonfatal_and_counted() {
        let (mut net, f4) = setup();
        // Saturate the backbone toward A.
        let bs_a = net.topology().base_station(f4.a);
        let hub = arm_net::ids::NodeId(0);
        let route = shortest_path(net.topology(), hub, bs_a).expect("connected");
        for l in &route.links {
            if net.topology().link(*l).wireless_cell.is_none() {
                let cap = net.link(*l).capacity();
                net.link_mut(*l).set_claim(ResvClaim::DynPool, cap);
            }
        }
        let mut mc = MulticastState::new();
        let conn = ConnId(0);
        let neighbors: Vec<CellId> = f4.env.neighbors(f4.d).collect();
        mc.establish(&mut net, conn, f4.d, 64.0, &neighbors);
        // The A branch failed; the others stand.
        assert!(mc.failed_branches >= 1);
        assert!(!mc.branches_of(conn).contains(&f4.a));
        assert!(mc.branches_of(conn).contains(&f4.e));
    }

    #[test]
    fn teardown_is_idempotent() {
        let (mut net, f4) = setup();
        let mut mc = MulticastState::new();
        let conn = ConnId(0);
        mc.establish(&mut net, conn, f4.d, 64.0, &[f4.a]);
        mc.teardown(&mut net, conn);
        mc.teardown(&mut net, conn);
        assert_eq!(mc.branches_of(conn).len(), 0);
    }
}
