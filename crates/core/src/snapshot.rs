//! Schema-versioned snapshot of the full control-plane state.
//!
//! A long-running manager (see `arm-server`) periodically checkpoints
//! itself so a crash can be recovered by *restore + replay*: load the
//! last [`ManagerSnapshot`], then re-apply the journaled event suffix.
//! For that discipline to be trustworthy the snapshot must be
//!
//! * **complete** — every field that influences a future decision is
//!   captured: the network ledgers, zoned profiles, per-cell policy
//!   state, the resident incremental maxmin engine (including its
//!   dirty set and work counters), fault state (down links/zones,
//!   doomed handoffs), and all metrics;
//! * **exact** — serialization is byte-stable: serialize →
//!   deserialize → re-serialize yields the identical string
//!   ([`ManagerSnapshot::to_json`] verifies this on every call, the
//!   same round-trip validation `RunReport` performs);
//! * **versioned** — [`SNAPSHOT_SCHEMA_VERSION`] is embedded and
//!   checked on load; a mismatch is a typed
//!   [`SnapshotError::SchemaMismatch`], never a panic or a silent
//!   misparse.
//!
//! The one deliberate exclusion is the observer ([`arm_obs::Obs`]):
//! observation is passive (bit-identical on/off, pinned by
//! `tests/obs_differential.rs`), so the restoring caller supplies
//! whatever observer the new process wants.

use std::collections::{BTreeMap, BTreeSet};

use arm_mobility::environment::IndoorEnvironment;
use arm_net::ids::{CellId, LinkId, NodeId, PortableId, ZoneId};
use arm_net::Network;
use arm_profiles::ZonedProfiles;
use arm_qos::maxmin::incremental::IncrementalMaxmin;
use arm_reservation::cafeteria::CafeteriaPredictor;
use arm_reservation::default_cell::OneStepMemory;
use arm_reservation::meeting::MeetingRoomPolicy;
use serde::{Deserialize, Serialize};

use crate::manager::{ManagerConfig, PortableState};
use crate::metrics::Metrics;
use crate::multicast::MulticastState;

/// Version stamp embedded in every snapshot. Bump on any change to the
/// field set of [`ManagerSnapshot`] or of anything it transitively
/// serializes.
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 1;

/// Why a snapshot could not be produced or loaded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot was written by a different schema version.
    SchemaMismatch {
        /// Version found in the artifact.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The artifact is not valid JSON or not a valid snapshot object.
    Parse(String),
    /// The decoded state fails an internal consistency check (ledger
    /// sums, index agreement, round-trip stability).
    Invalid(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::SchemaMismatch { found, expected } => {
                write!(f, "snapshot schema {found} != supported {expected}")
            }
            SnapshotError::Parse(m) => write!(f, "snapshot parse error: {m}"),
            SnapshotError::Invalid(m) => write!(f, "snapshot failed validation: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Complete serializable image of a [`crate::ResourceManager`].
///
/// Construct with [`crate::ResourceManager::snapshot`]; turn back into
/// a live manager with [`crate::ResourceManager::restore`]. Fields are
/// private: the snapshot is an opaque, validated artifact, not an API
/// for poking at manager internals.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ManagerSnapshot {
    /// Schema stamp, always [`SNAPSHOT_SCHEMA_VERSION`] when written
    /// by this build.
    pub(crate) schema: u32,
    pub(crate) net: Network,
    pub(crate) env: IndoorEnvironment,
    pub(crate) profiles: ZonedProfiles,
    pub(crate) cfg: ManagerConfig,
    pub(crate) metrics: Metrics,
    pub(crate) portables: BTreeMap<PortableId, PortableState>,
    pub(crate) meeting_policies: BTreeMap<CellId, MeetingRoomPolicy>,
    pub(crate) cafeteria_pred: BTreeMap<CellId, CafeteriaPredictor>,
    pub(crate) default_pred: BTreeMap<CellId, OneStepMemory>,
    pub(crate) slot_outflow: BTreeMap<CellId, u32>,
    pub(crate) multicast: MulticastState,
    pub(crate) last_excess: BTreeMap<LinkId, f64>,
    pub(crate) adaptation_rounds: u64,
    pub(crate) maxmin: IncrementalMaxmin,
    pub(crate) channel_renegotiations: u64,
    pub(crate) server_node: NodeId,
    pub(crate) down_links: BTreeSet<LinkId>,
    pub(crate) down_zones: BTreeSet<ZoneId>,
    pub(crate) doomed_handoffs: BTreeSet<PortableId>,
    pub(crate) link_failures: u64,
    pub(crate) stale_profile_fallbacks: u64,
    pub(crate) lost_profile_updates: u64,
    pub(crate) handoff_signalling_failures: u64,
}

impl ManagerSnapshot {
    /// The schema version this snapshot carries.
    pub fn schema(&self) -> u32 {
        self.schema
    }

    /// Serialize, validating the round trip: the emitted string must
    /// parse back and re-serialize to the identical bytes. A checkpoint
    /// that cannot faithfully restore is worse than none, so the check
    /// runs on every emit (snapshots are minutes apart; the extra parse
    /// is noise).
    pub fn to_json(&self) -> Result<String, SnapshotError> {
        let json = serde_json::to_string(self).map_err(|e| SnapshotError::Parse(e.to_string()))?;
        let back = Self::from_json(&json)?;
        let again =
            serde_json::to_string(&back).map_err(|e| SnapshotError::Parse(e.to_string()))?;
        if again != json {
            return Err(SnapshotError::Invalid(
                "snapshot round trip is not byte-identical".to_string(),
            ));
        }
        Ok(json)
    }

    /// Parse a snapshot, checking the schema version before decoding
    /// the body (so a version skew reports as [`SnapshotError::SchemaMismatch`],
    /// not as a confusing missing-field error from a drifted layout).
    pub fn from_json(s: &str) -> Result<Self, SnapshotError> {
        let v: serde::Value =
            serde_json::from_str(s).map_err(|e| SnapshotError::Parse(e.to_string()))?;
        let schema = v
            .as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == "schema"))
            .and_then(|(_, sv)| sv.as_u64())
            .ok_or_else(|| SnapshotError::Parse("missing or non-integer `schema` field".into()))?;
        if schema != u64::from(SNAPSHOT_SCHEMA_VERSION) {
            return Err(SnapshotError::SchemaMismatch {
                found: schema as u32,
                expected: SNAPSHOT_SCHEMA_VERSION,
            });
        }
        serde::Deserialize::from_value(&v).map_err(|e| SnapshotError::Parse(e.to_string()))
    }

    /// Validate internal consistency without building a manager: the
    /// network ledgers must balance and the schema must match.
    pub fn validate(&self) -> Result<(), SnapshotError> {
        if self.schema != SNAPSHOT_SCHEMA_VERSION {
            return Err(SnapshotError::SchemaMismatch {
                found: self.schema,
                expected: SNAPSHOT_SCHEMA_VERSION,
            });
        }
        self.net.check_invariants().map_err(SnapshotError::Invalid)
    }
}
