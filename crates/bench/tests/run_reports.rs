//! Every experiment binary emits a machine-readable run report; this
//! test runs the cheap ones end-to-end and consumes their reports back
//! through [`RunReport::from_json`] — the acceptance round-trip for the
//! report side channel.

use std::path::{Path, PathBuf};
use std::process::Command;

use arm_obs::RunReport;

fn run_bin(exe: &str, dir: &Path) -> RunReport {
    let out = Command::new(exe)
        .env("ARM_RUN_REPORT_DIR", dir)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"));
    assert!(
        out.status.success(),
        "{exe} exited {:?}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let name = Path::new(exe)
        .file_stem()
        .and_then(|s| s.to_str())
        .expect("binary has a name");
    let path = dir.join(format!("{name}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{exe} wrote no report at {}: {e}", path.display()));
    let rep =
        RunReport::from_json(&text).unwrap_or_else(|e| panic!("{exe} report does not parse: {e}"));
    assert_eq!(rep.bin, name, "report names its own binary");
    rep
}

fn temp_report_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("arm-run-reports-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp report dir");
    dir
}

#[test]
fn table_bins_emit_consumable_reports() {
    let dir = temp_report_dir("tables");
    let t1 = run_bin(env!("CARGO_BIN_EXE_expt_table1"), &dir);
    assert!(!t1.notes.is_empty(), "table1 report carries notes");
    let t2 = run_bin(env!("CARGO_BIN_EXE_expt_table2"), &dir);
    // Table 2 walks 2 disciplines × 2 mobility classes.
    assert_eq!(t2.notes.len(), 4);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fig2_report_round_trips() {
    let dir = temp_report_dir("fig2");
    let rep = run_bin(env!("CARGO_BIN_EXE_expt_fig2"), &dir);
    assert_eq!(rep.scenario, "figure-2-lounge-activity");
    assert_eq!(rep.seed, Some(3));
    assert!(rep.notes.iter().any(|n| n.contains("meeting-room")));
    let _ = std::fs::remove_dir_all(&dir);
}
