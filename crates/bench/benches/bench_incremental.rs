//! Incremental vs from-scratch maxmin under churn.
//!
//! The workload models what the resource manager actually does between
//! events: one connection departs and a similar one is admitted, and the
//! excess division must be recomputed. The from-scratch path pays a full
//! [`MaxminProblem::solve`] per recompute; the resident
//! [`IncrementalMaxmin`] engine re-fills only the dirty region's
//! connected component. Results (and the speedup the CI gate watches)
//! are written to `BENCH_maxmin.json` at the repository root.
//!
//! Run with `ARM_BENCH_QUICK=1` for the CI smoke mode (fewer events,
//! same shape); full mode is the one quoted in EXPERIMENTS.md.

use std::time::Instant;

use arm_net::ids::{ConnId, LinkId};
use arm_qos::maxmin::centralized::ConnDemand;
use arm_qos::maxmin::incremental::IncrementalMaxmin;
use arm_sim::SimRng;

/// One churn workload: `links` links, `per_link` local connections on
/// each, plus a two-link coupler every tenth link so components span
/// more than one link.
struct Workload {
    name: &'static str,
    links: usize,
    per_link: usize,
}

/// Measured cost of one churn event (depart + admit + recompute) under
/// both solver paths.
struct Row {
    name: &'static str,
    conns: usize,
    links: usize,
    full_ns: u128,
    incremental_ns: u128,
}

fn build_engine(w: &Workload, rng: &mut SimRng) -> IncrementalMaxmin {
    let mut engine = IncrementalMaxmin::new();
    for l in 0..w.links {
        engine.set_link_excess(LinkId(l as u32), rng.uniform(10.0, 60.0));
    }
    let mut id = 0u32;
    for l in 0..w.links {
        for _ in 0..w.per_link {
            let demand = if rng.chance(0.3) {
                rng.uniform(1.0, 8.0)
            } else {
                1e6
            };
            engine.upsert_conn(ConnId(id), demand, &[LinkId(l as u32)]);
            id += 1;
        }
        if l % 10 == 0 && l + 1 < w.links {
            engine.upsert_conn(ConnId(id), 1e6, &[LinkId(l as u32), LinkId(l as u32 + 1)]);
            id += 1;
        }
    }
    engine
}

/// Time `events` churn events (remove a connection, recompute, re-admit
/// it, recompute) against the from-scratch solver; returns ns/event.
fn measure_full(engine: &IncrementalMaxmin, events: usize, rng: &mut SimRng) -> u128 {
    let mut p = engine.as_problem();
    let ids: Vec<ConnId> = p.conns.keys().copied().collect();
    let start = Instant::now();
    for _ in 0..events {
        let id = ids[rng.index(ids.len())];
        let d = p.conns.remove(&id).expect("known conn");
        std::hint::black_box(p.solve());
        p.conns.insert(id, d);
        std::hint::black_box(p.solve());
    }
    start.elapsed().as_nanos() / events as u128
}

/// The same churn through the resident engine; returns ns/event.
fn measure_incremental(engine: &mut IncrementalMaxmin, events: usize, rng: &mut SimRng) -> u128 {
    let p = engine.as_problem();
    let ids: Vec<ConnId> = p.conns.keys().copied().collect();
    engine.resolve();
    let start = Instant::now();
    for _ in 0..events {
        let id = ids[rng.index(ids.len())];
        let ConnDemand { demand, links } = p.conns[&id].clone();
        engine.remove_conn(id);
        std::hint::black_box(engine.resolve());
        engine.upsert_conn(id, demand, &links);
        std::hint::black_box(engine.resolve());
    }
    start.elapsed().as_nanos() / events as u128
}

fn main() {
    let quick = std::env::var("ARM_BENCH_QUICK").is_ok();
    let mode = if quick { "quick" } else { "full" };
    let workloads = [
        Workload {
            name: "churn_1k",
            links: 100,
            per_link: 10,
        },
        Workload {
            name: "churn_10k",
            links: 200,
            per_link: 50,
        },
    ];
    let mut rows = Vec::new();
    for w in &workloads {
        let mut rng = SimRng::new(7);
        let mut engine = build_engine(w, &mut rng);
        let conns = engine.conn_count();
        // From-scratch cost is high; a handful of events is plenty of
        // signal. The incremental path is cheap enough to run thousands.
        let full_events = if quick { 2 } else { 5 };
        let incr_events = if quick { 200 } else { 2000 };
        let full_ns = measure_full(&engine, full_events, &mut rng.split("full"));
        let incremental_ns =
            measure_incremental(&mut engine, incr_events, &mut rng.split("incremental"));
        // Sanity: after all the churn the resident allocation still
        // matches a fresh solve bit for bit.
        let fresh = engine.as_problem().solve();
        let resident = engine.resolve();
        assert_eq!(fresh.len(), resident.len());
        for (c, x) in &fresh {
            assert_eq!(x.to_bits(), resident[c].to_bits(), "{c:?} diverged");
        }
        println!(
            "{:>9}: {} conns / {} links  full {:>12} ns/event  incremental {:>9} ns/event  speedup {:.1}x",
            w.name,
            conns,
            w.links,
            full_ns,
            incremental_ns,
            full_ns as f64 / incremental_ns as f64,
        );
        rows.push(Row {
            name: w.name,
            conns,
            links: w.links,
            full_ns,
            incremental_ns,
        });
    }
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"workload\": \"{}\",\n      \"conns\": {},\n      \"links\": {},\n      \"full_solve_ns_per_event\": {},\n      \"incremental_solve_ns_per_event\": {},\n      \"speedup\": {:.2}\n    }}",
                r.name,
                r.conns,
                r.links,
                r.full_ns,
                r.incremental_ns,
                r.full_ns as f64 / r.incremental_ns as f64,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"incremental_maxmin\",\n  \"mode\": \"{}\",\n  \"workloads\": [\n{}\n  ]\n}}\n",
        mode,
        entries.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_maxmin.json");
    std::fs::write(path, &json).expect("write BENCH_maxmin.json");
    println!("wrote {path}");
    // The acceptance gate: resident re-solve must beat from-scratch by
    // at least 5x on the 10k-connection workload.
    let big = rows.last().expect("two workloads");
    let speedup = big.full_ns as f64 / big.incremental_ns as f64;
    assert!(
        speedup >= 5.0,
        "incremental must be >= 5x faster at 10k conns, got {speedup:.1}x"
    );
}
