//! Maxmin kernels: centralized water-filling vs the distributed protocol
//! (flooding vs refined), and the advertised-rate computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use arm_net::ids::{ConnId, LinkId};
use arm_obs::Obs;
use arm_qos::maxmin::advertised::{advertised_rate, advertised_rate_for};
use arm_qos::maxmin::centralized::{ConnDemand, MaxminProblem};
use arm_qos::maxmin::distributed::{DistributedMaxmin, Ev, Variant};
use arm_sim::{Engine, SimDuration, SimRng, SimTime};

/// Parking-lot problem: chain of `n` links, one long flow + `k` cross
/// flows per link.
fn parking_lot(n: usize, k: usize, rng: &mut SimRng) -> MaxminProblem {
    let mut p = MaxminProblem::default();
    for l in 0..n {
        p.link_excess
            .insert(LinkId(l as u32), rng.uniform(10.0, 60.0));
    }
    let mut id = 0u32;
    p.conns.insert(
        ConnId(id),
        ConnDemand {
            demand: 1e6,
            links: (0..n).map(|l| LinkId(l as u32)).collect(),
        },
    );
    id += 1;
    for l in 0..n {
        for _ in 0..k {
            p.conns.insert(
                ConnId(id),
                ConnDemand {
                    demand: if rng.chance(0.3) {
                        rng.uniform(1.0, 8.0)
                    } else {
                        1e6
                    },
                    links: vec![LinkId(l as u32)],
                },
            );
            id += 1;
        }
    }
    p
}

fn bench_centralized(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxmin_centralized");
    for (n, k) in [(4usize, 2usize), (8, 4), (16, 8), (32, 8)] {
        let mut rng = SimRng::new(1);
        let p = parking_lot(n, k, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("solve", format!("{n}l_{}c", p.conns.len())),
            &p,
            |b, p| b.iter(|| p.solve()),
        );
    }
    group.finish();
}

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxmin_distributed");
    group.sample_size(20);
    for variant in [Variant::Flooding, Variant::Refined] {
        for (n, k) in [(4usize, 2usize), (8, 4)] {
            let mut rng = SimRng::new(1);
            let p = parking_lot(n, k, &mut rng);
            group.bench_with_input(
                BenchmarkId::new(format!("{variant:?}"), format!("{n}l_{}c", p.conns.len())),
                &p,
                |b, p| {
                    b.iter(|| {
                        let mut proto =
                            DistributedMaxmin::new(variant, SimDuration::from_millis(1));
                        for (l, cap) in &p.link_excess {
                            proto.add_link(*l, *cap);
                        }
                        for (cid, d) in &p.conns {
                            proto.add_conn(*cid, d.links.clone(), d.demand);
                        }
                        let mut engine = Engine::new(proto).with_event_budget(10_000_000);
                        for (l, cap) in &p.link_excess {
                            engine.schedule_at(
                                SimTime::ZERO,
                                Ev::ChangeExcess {
                                    link: *l,
                                    excess: *cap,
                                },
                            );
                        }
                        engine.run();
                        engine.model().stats()
                    });
                },
            );
        }
    }
    group.finish();
}

/// One full distributed solve of `p`, optionally with a recording
/// observer attached to the protocol.
fn run_refined(p: &MaxminProblem, obs: bool) -> u64 {
    let mut proto = DistributedMaxmin::new(Variant::Refined, SimDuration::from_millis(1));
    // 4096 retained events: big enough to keep the convergence tail,
    // small enough that the ring stays cache-resident and never pays
    // `VecDeque` growth reallocations mid-solve.
    let shared = obs.then(|| Obs::recording(4096).into_shared());
    if let Some(s) = &shared {
        proto.attach_obs(s.clone());
    }
    for (l, cap) in &p.link_excess {
        proto.add_link(*l, *cap);
    }
    for (cid, d) in &p.conns {
        proto.add_conn(*cid, d.links.clone(), d.demand);
    }
    let mut engine = Engine::new(proto).with_event_budget(10_000_000);
    for (l, cap) in &p.link_excess {
        engine.schedule_at(
            SimTime::ZERO,
            Ev::ChangeExcess {
                link: *l,
                excess: *cap,
            },
        );
    }
    engine.run();
    engine.model().stats().advertise_hops
}

/// The observability acceptance bar: a recording observer attached to
/// the distributed protocol must cost at most 5% of the solve. Criterion
/// measures both configurations; quick mode (`ARM_BENCH_QUICK=1`, the CI
/// smoke path) additionally asserts the ratio on a min-of-N paired
/// measurement — min is robust against scheduler noise.
fn bench_distributed_obs(c: &mut Criterion) {
    let mut rng = SimRng::new(1);
    let p = parking_lot(8, 4, &mut rng);
    let mut group = c.benchmark_group("maxmin_distributed_obs");
    group.sample_size(20);
    for (label, obs) in [("plain", false), ("recording", true)] {
        group.bench_with_input(BenchmarkId::new(label, "8l_33c"), &p, |b, p| {
            b.iter(|| run_refined(p, obs));
        });
    }
    group.finish();

    if std::env::var("ARM_BENCH_QUICK").is_ok() {
        let min_time = |obs: bool| {
            (0..15)
                .map(|_| {
                    let t0 = std::time::Instant::now();
                    std::hint::black_box(run_refined(&p, obs));
                    t0.elapsed()
                })
                .min()
                .expect("non-empty sample")
        };
        // Warm both paths once before timing.
        run_refined(&p, false);
        run_refined(&p, true);
        let plain = min_time(false);
        let with_obs = min_time(true);
        let ratio = with_obs.as_secs_f64() / plain.as_secs_f64().max(1e-12);
        println!("obs overhead: plain {plain:?}, recording {with_obs:?} ({ratio:.3}x)");
        assert!(
            ratio <= 1.05,
            "recording observer costs more than 5%: {ratio:.3}x"
        );
    }
}

fn bench_advertised(c: &mut Criterion) {
    let mut group = c.benchmark_group("advertised_rate");
    for n in [4usize, 16, 64] {
        let mut rng = SimRng::new(2);
        let recorded: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 20.0)).collect();
        group.bench_with_input(BenchmarkId::new("mu", n), &recorded, |b, r| {
            b.iter(|| advertised_rate(100.0, r));
        });
        group.bench_with_input(BenchmarkId::new("mu_for", n), &recorded, |b, r| {
            b.iter(|| advertised_rate_for(100.0, r));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_centralized,
    bench_distributed,
    bench_distributed_obs,
    bench_advertised
);
criterion_main!(benches);
