//! Maxmin kernels: centralized water-filling vs the distributed protocol
//! (flooding vs refined), and the advertised-rate computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use arm_net::ids::{ConnId, LinkId};
use arm_qos::maxmin::advertised::{advertised_rate, advertised_rate_for};
use arm_qos::maxmin::centralized::{ConnDemand, MaxminProblem};
use arm_qos::maxmin::distributed::{DistributedMaxmin, Ev, Variant};
use arm_sim::{Engine, SimDuration, SimRng, SimTime};

/// Parking-lot problem: chain of `n` links, one long flow + `k` cross
/// flows per link.
fn parking_lot(n: usize, k: usize, rng: &mut SimRng) -> MaxminProblem {
    let mut p = MaxminProblem::default();
    for l in 0..n {
        p.link_excess
            .insert(LinkId(l as u32), rng.uniform(10.0, 60.0));
    }
    let mut id = 0u32;
    p.conns.insert(
        ConnId(id),
        ConnDemand {
            demand: 1e6,
            links: (0..n).map(|l| LinkId(l as u32)).collect(),
        },
    );
    id += 1;
    for l in 0..n {
        for _ in 0..k {
            p.conns.insert(
                ConnId(id),
                ConnDemand {
                    demand: if rng.chance(0.3) {
                        rng.uniform(1.0, 8.0)
                    } else {
                        1e6
                    },
                    links: vec![LinkId(l as u32)],
                },
            );
            id += 1;
        }
    }
    p
}

fn bench_centralized(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxmin_centralized");
    for (n, k) in [(4usize, 2usize), (8, 4), (16, 8), (32, 8)] {
        let mut rng = SimRng::new(1);
        let p = parking_lot(n, k, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("solve", format!("{n}l_{}c", p.conns.len())),
            &p,
            |b, p| b.iter(|| p.solve()),
        );
    }
    group.finish();
}

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxmin_distributed");
    group.sample_size(20);
    for variant in [Variant::Flooding, Variant::Refined] {
        for (n, k) in [(4usize, 2usize), (8, 4)] {
            let mut rng = SimRng::new(1);
            let p = parking_lot(n, k, &mut rng);
            group.bench_with_input(
                BenchmarkId::new(format!("{variant:?}"), format!("{n}l_{}c", p.conns.len())),
                &p,
                |b, p| {
                    b.iter(|| {
                        let mut proto =
                            DistributedMaxmin::new(variant, SimDuration::from_millis(1));
                        for (l, cap) in &p.link_excess {
                            proto.add_link(*l, *cap);
                        }
                        for (cid, d) in &p.conns {
                            proto.add_conn(*cid, d.links.clone(), d.demand);
                        }
                        let mut engine = Engine::new(proto).with_event_budget(10_000_000);
                        for (l, cap) in &p.link_excess {
                            engine.schedule_at(
                                SimTime::ZERO,
                                Ev::ChangeExcess {
                                    link: *l,
                                    excess: *cap,
                                },
                            );
                        }
                        engine.run();
                        engine.model().stats()
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_advertised(c: &mut Criterion) {
    let mut group = c.benchmark_group("advertised_rate");
    for n in [4usize, 16, 64] {
        let mut rng = SimRng::new(2);
        let recorded: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 20.0)).collect();
        group.bench_with_input(BenchmarkId::new("mu", n), &recorded, |b, r| {
            b.iter(|| advertised_rate(100.0, r));
        });
        group.bench_with_input(BenchmarkId::new("mu_for", n), &recorded, |b, r| {
            b.iter(|| advertised_rate_for(100.0, r));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_centralized,
    bench_distributed,
    bench_advertised
);
criterion_main!(benches);
