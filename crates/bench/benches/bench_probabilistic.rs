//! The §6.3 kernels: exact binomial convolution for `P_nb` (eqn 5), the
//! per-arrival admission decision, and the `N_i` maximisation (eqn 7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use arm_reservation::probabilistic::{
    binom_pmf, ProbabilisticConfig, ProbabilisticReservation, TypeState,
};

fn fig6_state(n1: u32, s1: u32, n2: u32, s2: u32) -> Vec<TypeState> {
    vec![
        TypeState {
            b_min: 1.0,
            mu: 5.0,
            n_current: n1,
            s_neighbor: s1,
        },
        TypeState {
            b_min: 4.0,
            mu: 4.0,
            n_current: n2,
            s_neighbor: s2,
        },
    ]
}

fn bench_probabilistic(c: &mut Criterion) {
    let mut group = c.benchmark_group("probabilistic");
    let solver = ProbabilisticReservation::new(ProbabilisticConfig::fig6(0.05, 0.01));
    for load in [10u32, 25, 38] {
        let types = fig6_state(load, load, 1, 1);
        let admitted = [load, 1];
        group.bench_with_input(
            BenchmarkId::new("nonblocking_prob", load),
            &types,
            |b, t| b.iter(|| solver.nonblocking_prob(t, &admitted)),
        );
        group.bench_with_input(BenchmarkId::new("admit_new", load), &types, |b, t| {
            b.iter(|| solver.admit_new(t, 0));
        });
    }
    let types = fig6_state(10, 10, 1, 1);
    group.bench_function("max_admissible", |b| {
        b.iter(|| solver.max_admissible(&types));
    });
    for n in [10u32, 40, 100] {
        group.bench_with_input(BenchmarkId::new("binom_pmf", n), &n, |b, n| {
            b.iter(|| binom_pmf(*n, 0.37));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_probabilistic);
criterion_main!(benches);
