//! Whole-experiment benchmarks: one timed run per paper artefact, so a
//! regression in any layer of the stack shows up as an end-to-end
//! slowdown.
//!
//! * `fig5_meeting_*` — the Figure 5 replay (trace generation + full
//!   resource-manager run) per strategy,
//! * `fig6_point` — one Figure 6 simulation point,
//! * `sec71_office_case` — the §7.1 workweek analysis,
//! * `trace_generation` — the mobility generators alone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use arm_core::driver::fig6::{self, AdmissionPolicy, Fig6Params};
use arm_core::driver::meeting as meeting_driver;
use arm_core::driver::office;
use arm_core::Strategy;
use arm_mobility::environment::Figure4;
use arm_mobility::models::{meeting, office_case};
use arm_sim::SimRng;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_meeting");
    group.sample_size(10);
    for strategy in [Strategy::BruteForce, Strategy::Aggregate, Strategy::Paper] {
        group.bench_with_input(
            BenchmarkId::new("run35", strategy.label()),
            &strategy,
            |b, s| b.iter(|| meeting_driver::run(*s, 35, 42)),
        );
    }
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    let params = Fig6Params {
        span_units: 500.0,
        ..Default::default()
    };
    group.bench_function("probabilistic_point", |b| {
        b.iter(|| {
            fig6::run(
                AdmissionPolicy::Probabilistic {
                    window_t: 0.05,
                    p_qos: 0.01,
                },
                params,
            )
        });
    });
    group.bench_function("unprotected_point", |b| {
        b.iter(|| fig6::run(AdmissionPolicy::None, params));
    });
    group.finish();
}

fn bench_sec71(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec71");
    group.sample_size(10);
    group.bench_function("office_case_full", |b| b.iter(|| office::run(42)));
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.bench_function("office_week", |b| {
        let f4 = Figure4::build();
        let params = office_case::OfficeCaseParams::default();
        b.iter(|| office_case::generate(&f4, &params, &mut SimRng::new(1)));
    });
    group.bench_function("meeting_55", |b| {
        let menv = meeting::MeetingEnv::build();
        let params = meeting::MeetingParams {
            attendees: 55,
            ..Default::default()
        };
        b.iter(|| meeting::generate(&menv, &params, &mut SimRng::new(1)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig5,
    bench_fig6,
    bench_sec71,
    bench_generators
);
criterion_main!(benches);
