//! Table 2 kernel benchmark: the full round-trip admission test under
//! WFQ and RCSP, and the handoff variant consuming a claim.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use arm_net::flowspec::{QosRequest, TrafficSpec};
use arm_net::ids::{NodeId, PortableId};
use arm_net::link::ResvClaim;
use arm_net::routing::shortest_path;
use arm_net::topology::Topology;
use arm_net::{Connection, Network};
use arm_qos::admission::{admit, AdmissionRequest, Discipline, MobilityClass, RequestKind};
use arm_sim::SimTime;

fn testbed() -> (Network, arm_net::ids::CellId, arm_net::ids::CellId) {
    let mut t = Topology::new();
    let sw = t.add_switch("sw");
    let c0 = t.add_cell("c0", 160_000.0, 0.01);
    let c1 = t.add_cell("c1", 160_000.0, 0.01);
    t.add_wired_duplex(sw, t.base_station(c0), 1_000_000.0, 0.0);
    t.add_wired_duplex(sw, t.base_station(c1), 1_000_000.0, 0.0);
    (Network::new(t), c0, c1)
}

fn qos() -> QosRequest {
    QosRequest::bandwidth(64.0, 256.0)
        .with_delay(2.0)
        .with_jitter(2.0)
        .with_loss(0.05)
        .with_traffic(TrafficSpec::new(8.0, 64.0))
}

fn bench_admission(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_admission");
    for (discipline, name) in [(Discipline::Wfq, "wfq"), (Discipline::Rcsp, "rcsp")] {
        group.bench_function(format!("admit_new_{name}"), |b| {
            b.iter_batched(
                || {
                    let (mut net, c0, c1) = testbed();
                    let id = net.next_conn_id();
                    let route = shortest_path(
                        net.topology(),
                        net.topology().air_node(c0),
                        net.topology().air_node(c1),
                    )
                    .expect("connected");
                    net.install(Connection::new(
                        id,
                        PortableId(0),
                        c0,
                        NodeId(0),
                        qos(),
                        route,
                        SimTime::ZERO,
                    ));
                    (net, id)
                },
                |(mut net, id)| {
                    admit(
                        &mut net,
                        AdmissionRequest {
                            conn: id,
                            discipline,
                            mobility: MobilityClass::Mobile,
                            kind: RequestKind::New,
                        },
                    )
                    .expect("feasible")
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.bench_function("admit_handoff_with_claim", |b| {
        b.iter_batched(
            || {
                let (mut net, c0, c1) = testbed();
                let id = net.next_conn_id();
                let route = shortest_path(
                    net.topology(),
                    net.topology().air_node(c0),
                    net.topology().air_node(c1),
                )
                .expect("connected");
                net.install(Connection::new(
                    id,
                    PortableId(0),
                    c0,
                    NodeId(0),
                    qos(),
                    route,
                    SimTime::ZERO,
                ));
                let wl = net.topology().wireless_link(c1);
                net.link_mut(wl).set_claim(ResvClaim::Conn(id), 64.0);
                (net, id)
            },
            |(mut net, id)| {
                admit(
                    &mut net,
                    AdmissionRequest {
                        conn: id,
                        discipline: Discipline::Wfq,
                        mobility: MobilityClass::Mobile,
                        kind: RequestKind::Handoff,
                    },
                )
                .expect("feasible")
            },
            BatchSize::SmallInput,
        );
    });
    // The rejection path (bandwidth row fails at the last hop).
    group.bench_function("reject_bandwidth", |b| {
        b.iter_batched(
            || {
                let (mut net, c0, c1) = testbed();
                let wl = net.topology().wireless_link(c1);
                net.link_mut(wl).set_claim(ResvClaim::DynPool, 159_990.0);
                let id = net.next_conn_id();
                let route = shortest_path(
                    net.topology(),
                    net.topology().air_node(c0),
                    net.topology().air_node(c1),
                )
                .expect("connected");
                net.install(Connection::new(
                    id,
                    PortableId(0),
                    c0,
                    NodeId(0),
                    qos(),
                    route,
                    SimTime::ZERO,
                ));
                (net, id)
            },
            |(mut net, id)| {
                admit(
                    &mut net,
                    AdmissionRequest {
                        conn: id,
                        discipline: Discipline::Wfq,
                        mobility: MobilityClass::Mobile,
                        kind: RequestKind::New,
                    },
                )
                .expect_err("infeasible")
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_admission);
criterion_main!(benches);
