//! # arm-bench — experiment harnesses
//!
//! One binary per table/figure of the paper (run with
//! `cargo run -p arm-bench --release --bin expt_<id>`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `expt_table1` | Table 1 — profile contents (schema + live dump) |
//! | `expt_table2` | Table 2 — the admission-test rows on a worked example |
//! | `expt_fig2`   | Figure 2 — handoff activity shapes of the three lounges |
//! | `expt_fig5`   | Figure 5 — meeting-room series + drop comparison |
//! | `expt_fig6`   | Figure 6 — `P_d` vs `P_b` curve family over `T` |
//! | `expt_sec71`  | §7.1 — office-case fan-out, prediction accuracy, waste |
//! | `expt_maxmin` | Theorem 1 — distributed convergence + message counts |
//!
//! Criterion benchmarks (`cargo bench -p arm-bench`) measure the
//! algorithmic kernels: admission-test throughput (WFQ vs RCSP),
//! maxmin solving (centralized vs distributed, flooding vs refined),
//! the probabilistic admission decision, and whole-experiment runs.

pub mod report {
    //! Run-report emission for the experiment binaries.
    //!
    //! Every `expt_*` binary builds an [`RunReport`](arm_obs::RunReport)
    //! alongside its human-readable stdout and hands it to [`emit`],
    //! which writes `<dir>/<bin>.json` where `<dir>` is
    //! `$ARM_RUN_REPORT_DIR` (CI sets this to the artifact directory) or
    //! `target/run-reports/` by default. Reports never touch stdout, so
    //! the printed experiment output stays bit-identical whether or not
    //! reports are collected.

    use std::path::PathBuf;

    use arm_obs::RunReport;

    /// Where run reports land: `$ARM_RUN_REPORT_DIR` if set, else
    /// `target/run-reports/` under the working directory.
    pub fn report_dir() -> PathBuf {
        match std::env::var_os("ARM_RUN_REPORT_DIR") {
            Some(d) if !d.is_empty() => PathBuf::from(d),
            _ => PathBuf::from("target").join("run-reports"),
        }
    }

    /// Serialize `report`, round-trip validate it against the schema,
    /// and write it to `report_dir()/<bin>.json`. Returns the path
    /// written. The caller decides whether a failure is fatal; the
    /// binaries print the error to stderr and exit 0 (reports are a
    /// side channel, not the experiment).
    pub fn emit(report: &RunReport) -> std::io::Result<PathBuf> {
        let json = report.to_json().map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("run report failed to serialize: {e}"),
            )
        })?;
        // A report that does not parse back is a schema bug — refuse to
        // write it rather than hand CI a poisoned artifact.
        RunReport::from_json(&json).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("run report failed round-trip validation: {e}"),
            )
        })?;
        let dir = report_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", report.bin));
        std::fs::write(&path, json)?;
        Ok(path)
    }

    /// [`emit`], logging the outcome to stderr. For binary `main`s where
    /// report emission must never change the exit status.
    pub fn emit_or_warn(report: &RunReport) {
        match emit(report) {
            Ok(path) => eprintln!("run report: {}", path.display()),
            Err(e) => eprintln!("run report NOT written: {e}"),
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn emit_writes_and_validates() {
            let dir = std::env::temp_dir().join("arm-bench-report-test");
            // Serialize access to the env var across test threads via a
            // unique per-test dir name instead of mutating the env:
            // build the path by hand and write through emit's internals.
            let mut r = RunReport::new("unit-test-bin", "unit");
            r.seed = Some(7);
            let json = r.to_json().expect("serialises");
            assert!(RunReport::from_json(&json).is_ok());
            std::fs::create_dir_all(&dir).expect("temp dir");
            let path = dir.join("unit-test-bin.json");
            std::fs::write(&path, &json).expect("write");
            let back = RunReport::from_json(&std::fs::read_to_string(&path).expect("read"))
                .expect("parse");
            assert_eq!(back.bin, "unit-test-bin");
            assert_eq!(back.seed, Some(7));
            let _ = std::fs::remove_dir_all(&dir);
        }

        #[test]
        fn default_report_dir_is_under_target() {
            if std::env::var_os("ARM_RUN_REPORT_DIR").is_none() {
                assert_eq!(report_dir(), PathBuf::from("target/run-reports"));
            }
        }
    }
}

/// Render a small ASCII chart of a per-slot series (one row per slot).
pub fn ascii_series(label: &str, values: &[f64], scale: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!("{label}\n"));
    for (i, v) in values.iter().enumerate() {
        let bar = "#".repeat((v * scale).round() as usize);
        out.push_str(&format!("{i:>4} | {bar} {v:.0}\n"));
    }
    out
}

/// Render aligned table rows: `widths[i]` columns per cell.
pub fn table_row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    #[test]
    fn ascii_series_renders() {
        let s = super::ascii_series("x", &[0.0, 2.0, 4.0], 1.0);
        assert!(s.contains("x\n"));
        assert!(s.contains("   1 | ## 2"));
        assert!(s.contains("   2 | #### 4"));
    }

    #[test]
    fn table_row_aligns() {
        let r = super::table_row(&["a".into(), "42".into()], &[3, 5]);
        assert_eq!(r, "  a     42");
    }
}
