//! # arm-bench — experiment harnesses
//!
//! One binary per table/figure of the paper (run with
//! `cargo run -p arm-bench --release --bin expt_<id>`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `expt_table1` | Table 1 — profile contents (schema + live dump) |
//! | `expt_table2` | Table 2 — the admission-test rows on a worked example |
//! | `expt_fig2`   | Figure 2 — handoff activity shapes of the three lounges |
//! | `expt_fig5`   | Figure 5 — meeting-room series + drop comparison |
//! | `expt_fig6`   | Figure 6 — `P_d` vs `P_b` curve family over `T` |
//! | `expt_sec71`  | §7.1 — office-case fan-out, prediction accuracy, waste |
//! | `expt_maxmin` | Theorem 1 — distributed convergence + message counts |
//!
//! Criterion benchmarks (`cargo bench -p arm-bench`) measure the
//! algorithmic kernels: admission-test throughput (WFQ vs RCSP),
//! maxmin solving (centralized vs distributed, flooding vs refined),
//! the probabilistic admission decision, and whole-experiment runs.

/// Render a small ASCII chart of a per-slot series (one row per slot).
pub fn ascii_series(label: &str, values: &[f64], scale: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!("{label}\n"));
    for (i, v) in values.iter().enumerate() {
        let bar = "#".repeat((v * scale).round() as usize);
        out.push_str(&format!("{i:>4} | {bar} {v:.0}\n"));
    }
    out
}

/// Render aligned table rows: `widths[i]` columns per cell.
pub fn table_row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    #[test]
    fn ascii_series_renders() {
        let s = super::ascii_series("x", &[0.0, 2.0, 4.0], 1.0);
        assert!(s.contains("x\n"));
        assert!(s.contains("   1 | ## 2"));
        assert!(s.contains("   2 | #### 4"));
    }

    #[test]
    fn table_row_aligns() {
        let r = super::table_row(&["a".into(), "42".into()], &[3, 5]);
        assert_eq!(r, "  a     42");
    }
}
