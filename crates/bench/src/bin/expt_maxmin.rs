//! Theorem 1: the event-driven distributed rate-allocation protocol
//! converges to the centralized maxmin optimum, and the `M(l)`-restricted
//! refinement "significantly reduces the number of overhead messages"
//! relative to the flooding base version.

use arm_bench::report;
use arm_net::ids::{ConnId, LinkId};
use arm_obs::{EventKind, Obs, RunReport};
use arm_qos::maxmin::centralized::{ConnDemand, MaxminProblem};
use arm_qos::maxmin::distributed::{DistributedMaxmin, Ev, Variant};
use arm_sim::{Engine, SimDuration, SimRng, SimTime};

/// Build a random parking-lot style problem: a chain of `n_links` links
/// with one long flow plus `cross` cross flows per link.
fn random_problem(n_links: usize, cross: usize, rng: &mut SimRng) -> MaxminProblem {
    let mut p = MaxminProblem::default();
    for l in 0..n_links {
        p.link_excess
            .insert(LinkId(l as u32), rng.uniform(5.0, 50.0));
    }
    let mut next_conn = 0u32;
    // Long flow.
    p.conns.insert(
        ConnId(next_conn),
        ConnDemand {
            demand: 1000.0,
            links: (0..n_links).map(|l| LinkId(l as u32)).collect(),
        },
    );
    next_conn += 1;
    for l in 0..n_links {
        for _ in 0..cross {
            let demand = if rng.chance(0.3) {
                rng.uniform(0.5, 10.0)
            } else {
                1000.0
            };
            p.conns.insert(
                ConnId(next_conn),
                ConnDemand {
                    demand,
                    links: vec![LinkId(l as u32)],
                },
            );
            next_conn += 1;
        }
    }
    p
}

fn run_variant(p: &MaxminProblem, variant: Variant) -> (DistributedMaxmin, u64) {
    let mut proto = DistributedMaxmin::new(variant, SimDuration::from_millis(1));
    for (l, cap) in &p.link_excess {
        proto.add_link(*l, *cap);
    }
    for (c, d) in &p.conns {
        proto.add_conn(*c, d.links.clone(), d.demand);
    }
    let mut engine = Engine::new(proto).with_event_budget(10_000_000);
    for (l, cap) in &p.link_excess {
        engine.schedule_at(
            SimTime::ZERO,
            Ev::ChangeExcess {
                link: *l,
                excess: *cap,
            },
        );
    }
    engine.run();
    let elapsed = engine.now().ticks() / 1000; // ms of virtual time
    (engine.into_model(), elapsed)
}

fn main() {
    println!("== Theorem 1: distributed maxmin convergence & message overhead ==\n");
    println!(
        "{:>6} {:>6}  {:>12} {:>12} {:>10}  {:>12} {:>12} {:>10}  {:>8}",
        "links",
        "conns",
        "flood-adv",
        "flood-upd",
        "flood-ms",
        "refined-adv",
        "refined-upd",
        "refined-ms",
        "saving"
    );
    let mut rng = SimRng::new(2026);
    let mut rep = RunReport::new("expt_maxmin", "theorem-1-distributed-maxmin");
    rep.seed = Some(2026);
    for (n_links, cross) in [(3, 2), (5, 3), (8, 4), (12, 5), (16, 6)] {
        let p = random_problem(n_links, cross, &mut rng);
        let expect = p.solve();
        let (flood, flood_ms) = run_variant(&p, Variant::Flooding);
        let (refined, refined_ms) = run_variant(&p, Variant::Refined);
        // Verify Theorem 1 on both variants.
        for (model, name) in [(&flood, "flooding"), (&refined, "refined")] {
            for (c, x) in &expect {
                let got = model.rates().get(c).copied().unwrap_or(0.0);
                assert!(
                    (got - x).abs() < 1e-6,
                    "{name} diverged on {c:?}: {got} vs {x}"
                );
            }
        }
        let fs = flood.stats();
        let rs = refined.stats();
        let saving = 1.0
            - (rs.advertise_hops + rs.update_hops) as f64
                / (fs.advertise_hops + fs.update_hops).max(1) as f64;
        rep.notes.push(format!(
            "{} links / {} conns: flooding {} hops, refined {} hops ({:.1}% saved)",
            n_links,
            p.conns.len(),
            fs.advertise_hops + fs.update_hops,
            rs.advertise_hops + rs.update_hops,
            saving * 100.0
        ));
        println!(
            "{:>6} {:>6}  {:>12} {:>12} {:>10}  {:>12} {:>12} {:>10}  {:>7.1}%",
            n_links,
            p.conns.len(),
            fs.advertise_hops,
            fs.update_hops,
            flood_ms,
            rs.advertise_hops,
            rs.update_hops,
            refined_ms,
            saving * 100.0
        );
    }
    println!("\nBoth variants converged to the centralized maxmin optimum on every");
    println!("instance (asserted). The refined variant initiates ADVERTISE packets");
    println!("only toward connections whose rate can change, cutting overhead.");

    // Trace one representative instance through the observer so the run
    // report carries the protocol's event stream (ADVERTISE/UPDATE per
    // control-packet hop) alongside the hop-count table above.
    let p = random_problem(5, 3, &mut rng);
    let shared = Obs::recording(65_536).into_shared();
    let mut proto = DistributedMaxmin::new(Variant::Refined, SimDuration::from_millis(1));
    proto.attach_obs(shared.clone());
    for (l, cap) in &p.link_excess {
        proto.add_link(*l, *cap);
    }
    for (c, d) in &p.conns {
        proto.add_conn(*c, d.links.clone(), d.demand);
    }
    let mut engine = Engine::new(proto).with_event_budget(10_000_000);
    for (l, cap) in &p.link_excess {
        engine.schedule_at(
            SimTime::ZERO,
            Ev::ChangeExcess {
                link: *l,
                excess: *cap,
            },
        );
    }
    engine.run();
    rep.sim_events = Some(engine.dispatched());
    {
        let obs = shared.borrow();
        obs.fill_report(&mut rep);
        rep.notes.push(format!(
            "traced refined run: {} ADVERTISE, {} UPDATE events observed",
            obs.count(EventKind::AdvertiseSent),
            obs.count(EventKind::UpdateRecv)
        ));
    }
    report::emit_or_warn(&rep);
}
