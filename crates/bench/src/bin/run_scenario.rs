//! Run a declarative scenario file.
//!
//! ```text
//! cargo run --release -p arm-bench --bin run_scenario -- --emit-sample > my.json
//! cargo run --release -p arm-bench --bin run_scenario -- my.json
//! ```

use arm_bench::report as run_report;
use arm_core::scenario::{self, Scenario};
use arm_obs::RunReport;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: run_scenario <scenario.json> | --emit-sample");
        std::process::exit(2);
    });
    if arg == "--emit-sample" {
        println!(
            "{}",
            serde_json::to_string_pretty(&Scenario::sample()).expect("serialises")
        );
        return;
    }
    let text = std::fs::read_to_string(&arg).unwrap_or_else(|e| {
        eprintln!("cannot read {arg}: {e}");
        std::process::exit(2);
    });
    let sc: Scenario = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("invalid scenario: {e}");
        std::process::exit(2);
    });
    let report = scenario::run(&sc).unwrap_or_else(|e| {
        eprintln!("scenario rejected: {e}");
        std::process::exit(2);
    });
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("serialises")
    );

    let mut rep = RunReport::new("run_scenario", &report.name);
    rep.seed = Some(sc.seed);
    rep.notes.push(format!(
        "strategy {}: requests={} blocked={} p_b={:.5} p_d={:.5} moves={}",
        report.strategy, report.requests, report.blocked, report.p_b, report.p_d, report.moves
    ));
    run_report::emit_or_warn(&rep);
}
