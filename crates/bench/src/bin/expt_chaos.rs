//! Chaos soak harness: the §7.1 office case under randomized faults.
//!
//! ```text
//! cargo run --release -p arm-bench --bin expt_chaos -- [schedules] [seed]
//! ```
//!
//! Replays `schedules` (default 20) independently seeded
//! [`FaultSchedule`]s — link outages, profile-server outages,
//! control-plane degradation windows, handoff-signalling failures —
//! against the full §7.1 workweek, asserting the degradation invariants
//! after every event: the ledger stays consistent (no oversubscription),
//! every live connection keeps its guaranteed floor `b_min`, and the
//! distributed maxmin protocol still converges to the centralized oracle
//! under the injected control-plane loss. A run that survives prints a
//! per-schedule summary row; any violation panics the process.

use arm_bench::report;
use arm_core::chaos::{run_with_faults, run_with_faults_obs};
use arm_core::scenario::{self, EnvSpec, MobilitySpec, Scenario, WorkloadSpec};
use arm_core::Strategy;
use arm_obs::{ChaosSummary, Obs, RunReport};
use arm_sim::{FaultSchedule, FaultScheduleParams, SimDuration, SimRng};

fn office_scenario(seed: u64) -> Scenario {
    Scenario {
        name: "chaos-office".into(),
        environment: EnvSpec::Figure4,
        mobility: MobilitySpec::OfficeCase,
        workload: WorkloadSpec::Paper71,
        strategy: Strategy::Paper,
        cell_throughput_kbps: 1600.0,
        backbone_kbps: 100_000.0,
        wireless_error: 0.0,
        t_th_secs: 300,
        seed,
    }
}

fn main() {
    let schedules: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let base_seed: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let sc = office_scenario(11);

    println!("== Chaos soak: §7.1 office case, {schedules} fault schedules ==\n");

    // Zero-cost sanity: the empty schedule reproduces the plain runner
    // bit for bit.
    let plain = scenario::run(&sc).expect("valid scenario");
    let empty = run_with_faults(&sc, &FaultSchedule::empty()).expect("valid scenario");
    assert_eq!(
        format!("{plain:?}"),
        format!("{:?}", empty.report),
        "empty schedule must be bit-identical to the plain run"
    );
    println!(
        "empty schedule: bit-identical to the plain run (p_b={:.4})\n",
        plain.p_b
    );

    let params = FaultScheduleParams {
        span: SimDuration::from_mins(40 * 60), // the §7.1 workweek
        links: 20,
        zones: 1,
        portables: 30,
        ..FaultScheduleParams::default()
    };
    println!(
        "{:>4} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8} {:>8} {:>8}",
        "seed", "faults", "checks", "lnkdwn", "stale", "hsfail", "lost", "p_b", "p_d", "dropped"
    );
    let mut chaos_total = ChaosSummary::default();
    let mut rep = RunReport::new("expt_chaos", "section-7.1-office-chaos-soak");
    rep.seed = Some(base_seed);
    for i in 0..schedules {
        let seed = base_seed + i;
        let sched = FaultSchedule::generate(&params, &SimRng::new(seed));
        // The first schedule runs with a recording observer installed —
        // observation is strictly passive (asserted by the core
        // differential tests), so the printed row is identical either
        // way; the report additionally gets event counts and phase
        // timers from a representative faulted run.
        let out = if i == 0 {
            let (out, obs) = run_with_faults_obs(&sc, &sched, Obs::recording(8192))
                .unwrap_or_else(|e| panic!("schedule {seed}: scenario rejected: {e}"));
            obs.fill_report(&mut rep);
            out
        } else {
            run_with_faults(&sc, &sched)
                .unwrap_or_else(|e| panic!("schedule {seed}: scenario rejected: {e}"))
        };
        assert_eq!(out.faults_applied, sched.len(), "every fault must land");
        let s = out.summary(1);
        chaos_total.schedules += 1;
        chaos_total.faults_applied += s.faults_applied;
        chaos_total.invariant_checks += s.invariant_checks;
        chaos_total.lossy_maxmin_checks += s.lossy_maxmin_checks;
        chaos_total.link_failures += s.link_failures;
        chaos_total.stale_profile_fallbacks += s.stale_profile_fallbacks;
        chaos_total.handoff_signalling_failures += s.handoff_signalling_failures;
        chaos_total.lost_profile_updates += s.lost_profile_updates;
        println!(
            "{:>4} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8.4} {:>8.4} {:>8}",
            seed,
            out.faults_applied,
            out.invariant_checks,
            out.link_failures,
            out.stale_profile_fallbacks,
            out.handoff_signalling_failures,
            out.lost_profile_updates,
            out.report.p_b,
            out.report.p_d,
            out.report.dropped,
        );
    }
    println!(
        "\nall {schedules} schedules survived: ledger consistent, floors held, \
         lossy maxmin converged after every event"
    );

    rep.chaos = Some(chaos_total);
    rep.notes
        .push("invariants asserted after every event of every schedule".into());
    report::emit_or_warn(&rep);
}
