//! QoS adaptation under a time-varying wireless channel (§2.1 + §5.3).
//!
//! The paper's adaptation machinery has no figure of its own — it is
//! motivated by "the time-varying effective capacity of the wireless
//! link" and exercised implicitly. This harness makes it visible:
//! adaptive connections (`[b_min, b_max]` bounds) ride a Gilbert–Elliott
//! fading medium; their aggregate allocation tracks the effective
//! capacity (never exceeding it, never dropping a floor unless the fade
//! is deeper than the floors), and the δ threshold of eqn 2 trades
//! adaptation rounds for excess utilisation.

use arm_bench::report;
use arm_core::{ManagerConfig, ResourceManager, Strategy};
use arm_mobility::channel::{self, ChannelParams};
use arm_mobility::environment::IndoorEnvironment;
use arm_net::flowspec::QosRequest;
use arm_net::ids::PortableId;
use arm_obs::RunReport;
use arm_profiles::CellClass;
use arm_sim::{SimDuration, SimRng, SimTime};

fn build(delta: f64) -> (ResourceManager, arm_net::ids::CellId) {
    let mut env = IndoorEnvironment::new();
    let cell = env.add_cell("office", CellClass::Office);
    let corridor = env.add_cell("corridor", CellClass::Corridor);
    env.connect(cell, corridor);
    let net = env.build_network(1600.0, 0.0, 100_000.0);
    let cfg = ManagerConfig {
        strategy: Strategy::None,
        resolve_excess: true,
        dyn_pool: None,
        t_th: SimDuration::from_secs(0),
        delta,
        ..Default::default()
    };
    (ResourceManager::new(env, net, cfg), cell)
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);
    println!("== QoS adaptation under channel fades (seed {seed}) ==\n");
    let params = ChannelParams {
        mean_good: SimDuration::from_mins(3),
        mean_bad: SimDuration::from_secs(60),
        bad_fraction: 0.5,
    };
    let span = SimDuration::from_mins(30);

    // Part 1: the allocation trace under fades (δ = 0).
    let (mut mgr, cell) = build(0.0);
    for i in 0..3u32 {
        let p = PortableId(i);
        mgr.portable_appears(p, cell, SimTime::ZERO);
        let q = QosRequest::bandwidth(100.0, 1600.0)
            .with_delay(10.0)
            .with_jitter(10.0)
            .with_loss(1.0);
        mgr.request_connection(p, q, SimTime::from_secs(u64::from(i) + 1))
            .expect("admits");
    }
    let fades =
        channel::generate(cell, &params, span, &mut SimRng::new(seed)).expect("in-range fraction");
    println!("time(s)  effective-capacity  aggregate-allocation");
    let show = |mgr: &ResourceManager, t: SimTime, frac: f64| {
        let total: f64 = mgr.net.live_connections().map(|c| c.b_current).sum();
        println!(
            "{:>7.0}  {:>18.0}  {:>20.0}",
            t.as_secs_f64(),
            1600.0 * frac,
            total
        );
    };
    show(&mgr, SimTime::from_secs(3), 1.0);
    for ev in &fades {
        let victims = mgr
            .channel_change(ev.cell, ev.effective_fraction, ev.time)
            .expect("generated fractions are valid");
        assert!(victims.is_empty(), "floors (300) always fit a 50% fade");
        show(&mgr, ev.time, ev.effective_fraction);
    }
    println!(
        "\nadaptation rounds: {}; forced renegotiations: {}\n",
        mgr.adaptation_rounds, mgr.channel_renegotiations
    );
    let mut rep = RunReport::new("expt_adaptation", "qos-adaptation-under-fades");
    rep.seed = Some(seed);
    rep.notes.push(format!(
        "delta=0: {} adaptation rounds, {} forced renegotiations over {} fades",
        mgr.adaptation_rounds,
        mgr.channel_renegotiations,
        fades.len()
    ));

    // Part 2: the δ ablation — same fade schedule, growing thresholds.
    println!("--- eqn 2 δ ablation (same fade schedule) ---");
    println!(
        "{:>8}  {:>10}  {:>22}",
        "δ (kbps)", "rounds", "mean excess utilised"
    );
    for delta in [0.0, 25.0, 100.0, 400.0, 1600.0] {
        let (mut mgr, cell) = build(delta);
        for i in 0..3u32 {
            let p = PortableId(i);
            mgr.portable_appears(p, cell, SimTime::ZERO);
            let q = QosRequest::bandwidth(100.0, 1600.0)
                .with_delay(10.0)
                .with_jitter(10.0)
                .with_loss(1.0);
            mgr.request_connection(p, q, SimTime::from_secs(u64::from(i) + 1))
                .expect("admits");
        }
        // Integrate allocation over the fade schedule.
        let mut weighted = 0.0;
        let mut last_t = SimTime::from_secs(3);
        let mut last_total: f64 = mgr.net.live_connections().map(|c| c.b_current).sum();
        for ev in &fades {
            weighted += last_total * ev.time.since(last_t).as_secs_f64();
            mgr.channel_change(ev.cell, ev.effective_fraction, ev.time)
                .expect("generated fractions are valid");
            last_t = ev.time;
            last_total = mgr.net.live_connections().map(|c| c.b_current).sum();
        }
        let end = SimTime::ZERO + span;
        weighted += last_total * end.saturating_since(last_t).as_secs_f64();
        let mean = weighted / end.since(SimTime::from_secs(3)).as_secs_f64();
        println!(
            "{:>8.0}  {:>10}  {:>17.0} kbps",
            delta, mgr.adaptation_rounds, mean
        );
        rep.notes.push(format!(
            "delta={delta:.0}: {} rounds, mean excess utilised {mean:.0} kbps",
            mgr.adaptation_rounds
        ));
    }
    println!("\nlarger δ ⇒ fewer adaptation rounds but slower reclamation of");
    println!("recovered capacity (lower mean utilisation) — the control/benefit");
    println!("trade-off the paper introduces δ for.");
    report::emit_or_warn(&rep);
}
