//! Ablations of the paper's design choices (the list called out in
//! DESIGN.md):
//!
//! 1. **`B_dyn` pool fraction** (paper: "5% – 20%"): how often the pool
//!    rescues the sudden movement of a static portable, and what it costs
//!    in blocked admissions, across the band.
//! 2. **Prediction levels**: the contribution of each level of the §6
//!    three-level algorithm to next-cell accuracy on the §7.1 workweek.
//! 3. **Multicast pre-setup**: the wired bandwidth the §4 branches hold.

use arm_bench::report;
use arm_core::{ManagerConfig, ResourceManager, Strategy};
use arm_mobility::environment::Figure4;
use arm_mobility::models::office_case::{self, OfficeCaseParams};
use arm_net::flowspec::QosRequest;
use arm_net::ids::PortableId;
use arm_obs::RunReport;
use arm_profiles::prediction::PredictionLevel;
use arm_qos::adaptation::DynPoolPolicy;
use arm_sim::{SimDuration, SimRng, SimTime};

fn qos(kbps: f64) -> QosRequest {
    QosRequest::fixed(kbps)
        .with_delay(30.0)
        .with_jitter(30.0)
        .with_loss(1.0)
}

/// Part 1: sudden static movers vs the pool band.
fn bdyn_sweep(rep: &mut RunReport) {
    println!("--- ablation 1: B_dyn pool fraction (paper band: 5%–20%) ---");
    println!(
        "{:>9} {:>14} {:>14} {:>10}",
        "fraction", "statics moved", "rescued", "blocked"
    );
    for fraction in [0.0, 0.05, 0.10, 0.20, 0.30] {
        let f4 = Figure4::build();
        let net = f4.env.build_network(1600.0, 0.0, 100_000.0);
        let cfg = ManagerConfig {
            strategy: Strategy::Paper,
            dyn_pool: if fraction > 0.0 {
                Some(DynPoolPolicy {
                    min_fraction: fraction,
                    max_fraction: fraction,
                })
            } else {
                None
            },
            ..Default::default()
        };
        let mut mgr = ResourceManager::new(f4.env.clone(), net, cfg);
        // 6 statics in A (each 150 kbps), the target cell D loaded to the
        // brim by other users.
        let mut t = SimTime::ZERO;
        for i in 0..6u32 {
            let p = PortableId(i);
            mgr.portable_appears(p, f4.a, SimTime::ZERO);
            t = SimTime::from_mins(10) + SimDuration::from_secs(u64::from(i));
            mgr.request_connection(p, qos(150.0), t).expect("admits");
        }
        let mut blocked = 0u32;
        for i in 100..110u32 {
            let p = PortableId(i);
            mgr.portable_appears(p, f4.d, SimTime::ZERO);
            t += SimDuration::from_secs(1);
            if mgr.request_connection(p, qos(150.0), t).is_err() {
                blocked += 1;
            }
        }
        // The statics suddenly move into D, one per minute.
        let mut rescued = 0u32;
        for i in 0..6u32 {
            let p = PortableId(i);
            t += SimDuration::from_mins(1);
            if mgr.portable_moved(p, f4.d, t).is_empty() {
                rescued += 1;
            }
            // They return so the next mover faces the same pool.
            t += SimDuration::from_secs(5);
            let _ = mgr.portable_moved(p, f4.a, t);
            // …and dwell long enough to be static again.
            t += SimDuration::from_mins(6);
            mgr.slot_tick(t);
        }
        println!(
            "{:>8.0}% {:>14} {:>14} {:>10}",
            fraction * 100.0,
            6,
            rescued,
            blocked
        );
        rep.notes.push(format!(
            "B_dyn {:.0}%: {rescued}/6 sudden movers rescued, {blocked} admissions blocked",
            fraction * 100.0
        ));
    }
    println!("(no pool: sudden movers drop; a bigger pool rescues more but");
    println!("blocks more admissions in the neighbour — the 5–20% band is the");
    println!("compromise the paper picks.)\n");
}

/// Part 2: prediction-level contributions on the §7.1 trace.
fn prediction_levels(rep: &mut RunReport) {
    println!("--- ablation 2: three-level prediction, level contributions ---");
    let f4 = Figure4::build();
    let params = OfficeCaseParams::default();
    let trace = office_case::generate(&f4, &params, &mut SimRng::new(42));
    // Replay against a full profile universe, scoring per level.
    let mut server = arm_profiles::ProfileServer::new(arm_net::ids::ZoneId(0));
    f4.env.seed_profiles(&mut server);
    let mut per_level: std::collections::BTreeMap<&'static str, (u64, u64)> = Default::default();
    let mut full = (0u64, 0u64);
    for ev in trace.events() {
        match ev.from {
            None => server.portable_entered(ev.portable, ev.to),
            Some(from) => {
                let prev = server.context(ev.portable).and_then(|(p, _)| p);
                let pred = server.predict_at(ev.portable, prev, from);
                let label = match pred.level {
                    PredictionLevel::PortableProfile => "1: portable profile",
                    PredictionLevel::OccupantOffice => "2a: occupant office",
                    PredictionLevel::CellAggregate => "2b: cell aggregate",
                    PredictionLevel::Default => "3: default",
                };
                let entry = per_level.entry(label).or_insert((0, 0));
                entry.0 += 1;
                let hit = pred.cell == Some(ev.to);
                if hit {
                    entry.1 += 1;
                }
                full.0 += 1;
                if hit {
                    full.1 += 1;
                }
                server.record_handoff(ev.portable, prev, from, ev.to, ev.time);
            }
        }
    }
    println!(
        "{:<22} {:>9} {:>9} {:>9}",
        "level used", "moves", "hits", "accuracy"
    );
    for (label, (n, hits)) in &per_level {
        println!(
            "{:<22} {:>9} {:>9} {:>8.1}%",
            label,
            n,
            hits,
            100.0 * *hits as f64 / (*n).max(1) as f64
        );
    }
    println!(
        "{:<22} {:>9} {:>9} {:>8.1}%\n",
        "all levels",
        full.0,
        full.1,
        100.0 * full.1 as f64 / full.0.max(1) as f64
    );
    rep.notes.push(format!(
        "three-level prediction: {:.1}% accuracy over {} moves",
        100.0 * full.1 as f64 / full.0.max(1) as f64,
        full.0
    ));
}

/// Part 3: what the §4 multicast branches hold on the backbone.
fn multicast_cost(rep: &mut RunReport) {
    println!("--- ablation 3: §4 multicast pre-setup cost ---");
    for enabled in [true, false] {
        let f4 = Figure4::build();
        let net = f4.env.build_network(1600.0, 0.0, 10_000.0);
        let cfg = ManagerConfig {
            strategy: Strategy::Paper,
            multicast: enabled,
            ..Default::default()
        };
        let mut mgr = ResourceManager::new(f4.env.clone(), net, cfg);
        // Ten mobiles with 64 kbps connections spread over the corridors.
        let cells = [f4.c, f4.d, f4.e, f4.f, f4.g];
        for i in 0..10u32 {
            let p = PortableId(i);
            mgr.portable_appears(p, cells[i as usize % cells.len()], SimTime::ZERO);
            mgr.request_connection(p, qos(64.0), SimTime::from_secs(1 + u64::from(i)))
                .expect("admits");
        }
        // Sum the advance claims on wired links.
        let mut wired_resv = 0.0;
        for i in 0..mgr.net.topology().link_count() {
            let l = arm_net::ids::LinkId::from_index(i);
            if mgr.net.topology().link(l).wireless_cell.is_none() {
                wired_resv += mgr.net.link(l).b_resv();
            }
        }
        println!(
            "multicast {}: wired advance reservations {:>8.0} kbps, active branches {}",
            if enabled { "on " } else { "off" },
            wired_resv,
            mgr.multicast.active_branches
        );
        rep.notes.push(format!(
            "multicast {}: {wired_resv:.0} kbps wired reservations, {} branches",
            if enabled { "on" } else { "off" },
            mgr.multicast.active_branches
        ));
    }
    println!("(the branches buy transient-free handoffs at the price of wired");
    println!("bandwidth the paper considers cheap relative to the air interface)");
}

fn main() {
    println!("== design-choice ablations ==\n");
    let mut rep = RunReport::new("expt_ablations", "design-choice-ablations");
    bdyn_sweep(&mut rep);
    prediction_levels(&mut rep);
    multicast_cost(&mut rep);
    report::emit_or_warn(&rep);
}
