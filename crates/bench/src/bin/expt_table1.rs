//! Table 1: cell and portable profile contents.
//!
//! Prints the schema (per class: handoff activity + profile contents)
//! and then a live dump of profiles aggregated from a short §7.1-style
//! run, showing the ⟨i, ∀j ∈ η(c): {j, p_j}⟩ rows and the portable's
//! ⟨prev, cur, next-predicted⟩ triplets.

use arm_bench::report;
use arm_mobility::environment::Figure4;
use arm_mobility::models::office_case::{self, OfficeCaseParams};
use arm_obs::RunReport;
use arm_profiles::{CellClass, LoungeKind, ProfileServer};
use arm_sim::SimRng;

fn main() {
    println!("== Table 1: cell and portable profiles ==\n");
    println!("schema (per Table 1):");
    for class in [
        CellClass::Office,
        CellClass::Corridor,
        CellClass::Lounge(LoungeKind::MeetingRoom),
        CellClass::Lounge(LoungeKind::Cafeteria),
        CellClass::Lounge(LoungeKind::Default),
    ] {
        let contents = match class {
            CellClass::Office => "ω(c), η(c), ∀i∈η(c) ⟨i, ∀j∈η(c) {j, p_j}⟩",
            CellClass::Corridor => "η(c), ∀i∈η(c) ⟨i, ∀j∈η(c) {j, p_j}⟩",
            CellClass::Lounge(LoungeKind::MeetingRoom) => {
                "η(c), booking calendar, ∀i∈η(c) ⟨i, ∀j∈η(c) {j, p_j}⟩"
            }
            _ => "η(c), ∀i∈η(c) ⟨i, ∀j∈η(c) {j, p_j}⟩",
        };
        println!(
            "  {:<22} activity: {:<28} contents: {contents}",
            class.to_string(),
            class.handoff_activity()
        );
    }
    println!(
        "  {:<22} contents: ∀i ⟨prev, cur, next-predicted-cell⟩",
        "portable"
    );

    // Live dump from a scaled-down workweek.
    let f4 = Figure4::build();
    let params = OfficeCaseParams::default();
    let mut rng = SimRng::new(7);
    let trace = office_case::generate(&f4, &params, &mut rng);
    let mut server = ProfileServer::new(arm_net::ids::ZoneId(0));
    f4.env.seed_profiles(&mut server);
    for ev in trace.events() {
        match ev.from {
            None => server.portable_entered(ev.portable, ev.to),
            Some(from) => {
                let prev = server.context(ev.portable).and_then(|(p, _)| p);
                server.record_handoff(ev.portable, prev, from, ev.to, ev.time);
            }
        }
    }

    println!("\nlive cell profile of corridor D after the workweek:");
    let d = server.cell(f4.d).expect("registered");
    println!("  class: {}", d.class);
    println!("  η(D): {:?}", d.neighbors);
    for prev in [Some(f4.c), Some(f4.e), Some(f4.a)] {
        let row = d.transition_row(prev);
        if row.is_empty() {
            continue;
        }
        let cells: Vec<String> = row
            .iter()
            .map(|(c, p)| format!("{{{}: {:.2}}}", f4.env.cell(*c).name, p))
            .collect();
        println!(
            "  ⟨prev {}, {}⟩",
            f4.env.cell(prev.expect("some")).name,
            cells.join(", ")
        );
    }

    println!("\nlive portable profile of the faculty member:");
    let fac = server.portable(f4.faculty).expect("tracked");
    println!("  history: last {} handoffs retained", fac.history_len());
    let mut shown = 0;
    for (prev, cur, next) in fac.triplets() {
        let name = |c: Option<arm_net::ids::CellId>| {
            c.map_or_else(|| "-".into(), |c| f4.env.cell(c).name.clone())
        };
        println!(
            "  ⟨prev {}, cur {}, next-predicted {}⟩",
            name(prev),
            name(Some(cur)),
            f4.env.cell(next).name
        );
        shown += 1;
        if shown >= 8 {
            println!("  …");
            break;
        }
    }

    let mut rep = RunReport::new("expt_table1", "table-1-profile-contents");
    rep.seed = Some(7);
    rep.notes.push(format!(
        "corridor D neighbours: {} cells; faculty history: {} handoffs",
        d.neighbors.len(),
        fac.history_len()
    ));
    report::emit_or_warn(&rep);
}
