//! §7.1 office-case experiment: fan-out counts, prediction accuracy, and
//! reservation waste.
//!
//! Paper reference values (one workweek in the UIUC ECE building):
//!
//! ```text
//! faculty : 127 C→D traversals → 94 into A, 20 into B, 13 to F/G
//! students: 218 C→D traversals → 12 into A, 173 into B, 33 to F/G
//! everyone: 1384 C→D traversals (39 → A and 17 → B from non-tracked)
//! ```
//!
//! Conclusions to reproduce: (a) deterministic reservation for office
//! occupants is valid (regulars are highly predictable), (b) brute-force
//! reservation in all neighbours is extremely wasteful.

use arm_bench::{report, table_row};
use arm_core::driver::office;
use arm_obs::RunReport;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    println!("== §7.1 office case (seed {seed}) ==\n");
    let r = office::run(seed);

    println!("Fan-out of C→D traversals (paper: faculty 127→94/20/13,");
    println!("students 218→12/173/33, all 1384):\n");
    let w = [10, 8, 6, 6, 8];
    println!(
        "{}",
        table_row(
            &[
                "population".into(),
                "C→D".into(),
                "→A".into(),
                "→B".into(),
                "→F/G".into()
            ],
            &w
        )
    );
    for (name, cd, a, b, fg) in &r.fanout {
        println!(
            "{}",
            table_row(
                &[
                    name.clone(),
                    cd.to_string(),
                    a.to_string(),
                    b.to_string(),
                    fg.to_string()
                ],
                &w
            )
        );
    }

    println!("\nThree-level prediction accuracy:\n");
    let w = [10, 11, 9, 9, 9];
    println!(
        "{}",
        table_row(
            &[
                "population".into(),
                "predicted".into(),
                "correct".into(),
                "hit-rate".into(),
                "level-3".into()
            ],
            &w
        )
    );
    for (name, acc) in &r.accuracy {
        println!(
            "{}",
            table_row(
                &[
                    name.clone(),
                    acc.predicted.to_string(),
                    acc.correct.to_string(),
                    format!("{:.1}%", acc.hit_rate() * 100.0),
                    acc.unpredicted.to_string()
                ],
                &w
            )
        );
    }

    println!("\nReservation cost (user-cell-seconds held in advance):\n");
    for (scheme, cost) in &r.reserved_cell_seconds {
        println!(
            "  {scheme:>12}: {:>12.0}  ({:.2}× the useful minimum)",
            cost,
            cost / r.useful_cell_seconds.max(1.0)
        );
    }
    println!(
        "\n  (useful minimum — one cell reserved exactly until each handoff: {:.0})",
        r.useful_cell_seconds
    );
    println!("\nPaper's conclusions: occupants are deterministically predictable;");
    println!("brute force multiplies the reservation bill by the neighbour count.");

    let mut rep = RunReport::new("expt_sec71", "section-7.1-office-case");
    rep.seed = Some(seed);
    for (name, cd, a, b, fg) in &r.fanout {
        rep.notes.push(format!(
            "fan-out {name}: C→D {cd} → A {a} / B {b} / F+G {fg}"
        ));
    }
    for (name, acc) in &r.accuracy {
        rep.notes.push(format!(
            "accuracy {name}: {:.1}% over {} predicted moves",
            acc.hit_rate() * 100.0,
            acc.predicted
        ));
    }
    for (scheme, cost) in &r.reserved_cell_seconds {
        rep.notes.push(format!(
            "reservation cost {scheme}: {:.0} user-cell-seconds ({:.2}x useful minimum)",
            cost,
            cost / r.useful_cell_seconds.max(1.0)
        ));
    }
    report::emit_or_warn(&rep);
}
