//! Figure 6: performance of the default (probabilistic) reservation
//! algorithm — a family of `P_d`-vs-`P_b` curves over the look-ahead
//! window `T`.
//!
//! Paper setup: two identical cells, capacity 40; type 1 (b=1, λ=30,
//! 1/μ=0.2, h=0.7), type 2 (b=4, λ=1, 1/μ=0.25, h=0.7). Expected shape:
//! `P_b` decreases as `P_d` is allowed to grow; the curves for different
//! `T` lie on top of each other at large `P_d`; small `T` is (weakly)
//! better, with little difference below T ≈ 0.05.

use arm_bench::report;
use arm_core::driver::fig6::{self, AdmissionPolicy, Fig6Params};
use arm_obs::RunReport;

fn main() {
    let span: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3000.0);
    let params = Fig6Params {
        span_units: span,
        ..Default::default()
    };
    println!("== Figure 6: default probabilistic reservation ==");
    println!("(two cells, B_c = 40, paper's two connection types; span {span} units)\n");

    let mut rep = RunReport::new("expt_fig6", "figure-6-probabilistic-reservation");
    let p_qos_grid = [
        0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.8,
    ];
    for window_t in [0.01, 0.02, 0.05, 0.1, 0.25] {
        println!("--- window T = {window_t} ---");
        println!("{:>8}  {:>9}  {:>9}", "P_QOS", "P_b", "P_d");
        let curve = fig6::curve(window_t, &p_qos_grid, params);
        if let (Some((_, lo)), Some((_, hi))) = (curve.first(), curve.last()) {
            rep.notes.push(format!(
                "T={window_t}: P_b from {:.5} down to {:.5} as P_d grows {:.5}→{:.5}",
                lo.p_b, hi.p_b, lo.p_d, hi.p_d
            ));
        }
        for (p_qos, pt) in curve {
            println!("{:>8.4}  {:>9.5}  {:>9.5}", p_qos, pt.p_b, pt.p_d);
        }
        println!();
    }

    println!("--- baselines ---");
    println!("{:>22}  {:>9}  {:>9}", "policy", "P_b", "P_d");
    let none = fig6::run(AdmissionPolicy::None, params);
    println!(
        "{:>22}  {:>9.5}  {:>9.5}",
        "no protection", none.p_b, none.p_d
    );
    for reserved in [2.0, 4.0, 6.0, 8.0] {
        let p = fig6::run(AdmissionPolicy::StaticReservation { reserved }, params);
        println!(
            "{:>22}  {:>9.5}  {:>9.5}",
            format!("static reserve {reserved}"),
            p.p_b,
            p.p_d
        );
    }
    println!("\npaper reference: P_b decreases with P_d; curves coincide at large");
    println!("P_d; small T preferable with little difference below T ≈ 0.05; the");
    println!("probabilistic algorithm outperforms static reservation throughout.");
    report::emit_or_warn(&rep);
}
