//! Empirical validation of Table 2's delay bounds at the packet level.
//!
//! The admission test promises worst-case per-hop delays; this harness
//! pushes greedy (worst-case) and randomised `(σ, ρ)`-conformant traffic
//! through faithful packet-level simulations of both disciplines and
//! reports the observed maxima against the analytic bounds.

use arm_bench::report;
use arm_obs::RunReport;
use arm_qos::schedulers::traffic::{greedy, random_conformant};
use arm_qos::schedulers::{gps, max_delay_per_flow, rcsp, wfq};
use arm_sim::SimRng;

fn main() {
    println!("== Table 2 delay bounds, validated at packet level ==\n");
    let capacity = 160.0; // kbps
    let l_max = 1.0; // kb
    let specs = [(8.0, 64.0), (4.0, 64.0), (2.0, 32.0)];

    // WFQ under greedy sources.
    let mut pkts = Vec::new();
    for (f, (sigma, rho)) in specs.iter().enumerate() {
        pkts.extend(greedy(f, *sigma, *rho, l_max, 0.0, 3.0));
    }
    let weights: Vec<f64> = specs.iter().map(|(_, rho)| *rho).collect();
    let w = wfq::simulate(&pkts, &weights, capacity);
    let g = gps::finish_times(&pkts, &weights, capacity);
    println!("--- WFQ vs its GPS reference (greedy sources, C = {capacity} kbps) ---");
    println!(
        "{:>5} {:>9} {:>9} {:>12} {:>14} {:>12}",
        "flow", "σ (kb)", "ρ (kbps)", "max d_GPS", "max d_WFQ", "Table2 bound"
    );
    let wmax = max_delay_per_flow(&w, specs.len());
    let gmax = max_delay_per_flow(&g, specs.len());
    for (f, (sigma, rho)) in specs.iter().enumerate() {
        let bound = (sigma + l_max) / rho + l_max / capacity;
        println!(
            "{:>5} {:>9.1} {:>9.0} {:>10.4} s {:>12.4} s {:>10.4} s  {}",
            f,
            sigma,
            rho,
            gmax[f],
            wmax[f],
            bound,
            if wmax[f] <= bound + 1e-9 {
                "✓"
            } else {
                "✗ VIOLATED"
            }
        );
    }
    // PGPS lag check across every packet.
    let max_lag = w
        .iter()
        .zip(&g)
        .map(|(wd, gd)| wd.departure - gd.departure)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "\nmax WFQ lag behind GPS: {:.5} s (PGPS bound L_max/C = {:.5} s)\n",
        max_lag,
        l_max / capacity
    );
    let mut rep = RunReport::new("expt_schedulers", "table-2-delay-bounds-packet-level");
    rep.notes.push(format!(
        "max WFQ lag behind GPS {max_lag:.5} s vs PGPS bound {:.5} s",
        l_max / capacity
    ));

    // WFQ under randomised conformant sources.
    let mut rng = SimRng::new(23);
    let mut pkts = Vec::new();
    for (f, (sigma, rho)) in specs.iter().enumerate() {
        pkts.extend(random_conformant(
            f, *sigma, *rho, l_max, 0.9, 10.0, &mut rng,
        ));
    }
    let w = wfq::simulate(&pkts, &weights, capacity);
    let wmax = max_delay_per_flow(&w, specs.len());
    println!("--- WFQ under randomised conformant traffic (load 0.9) ---");
    for (f, (sigma, rho)) in specs.iter().enumerate() {
        let bound = (sigma + l_max) / rho + l_max / capacity;
        println!(
            "flow {f}: max delay {:.4} s ≤ bound {:.4} s  {}",
            wmax[f],
            bound,
            if wmax[f] <= bound + 1e-9 {
                "✓"
            } else {
                "✗"
            }
        );
    }

    // RCSP: regulator + static priority.
    for (f, (sigma, rho)) in specs.iter().enumerate() {
        let bound = (sigma + l_max) / rho + l_max / capacity;
        rep.notes.push(format!(
            "WFQ flow {f} (load 0.9): max delay {:.4} s, bound {bound:.4} s",
            wmax[f]
        ));
    }

    println!("\n--- RCSP (rate-jitter regulators + static priority) ---");
    let flows = [
        rcsp::RcspFlow {
            sigma: 4.0,
            rho: 64.0,
            priority: 0,
        },
        rcsp::RcspFlow {
            sigma: 8.0,
            rho: 64.0,
            priority: 1,
        },
    ];
    let mut pkts = greedy(0, 4.0, 64.0, l_max, 0.0, 3.0);
    pkts.extend(greedy(1, 8.0, 64.0, l_max, 0.0, 3.0));
    let (deps, eligible) = rcsp::simulate(&pkts, &flows, capacity);
    for (f, flow) in flows.iter().enumerate() {
        let max_q = deps
            .iter()
            .enumerate()
            .filter(|(_, d)| d.packet.flow == f)
            .map(|(i, d)| d.departure - eligible[i])
            .fold(0.0, f64::max);
        println!(
            "priority {}: max post-regulator queueing {:.4} s (σ = {}, ρ = {})",
            flow.priority, max_q, flow.sigma, flow.rho
        );
    }
    println!("\nnon-work-conservation check: the regulator idles the link on");
    println!("purpose, so downstream hops see envelope-clean traffic — which is");
    println!("why Table 2's RCSP buffer row depends only on the delay budgets,");
    println!("not on the hop index like the WFQ row.");
    report::emit_or_warn(&rep);
}
