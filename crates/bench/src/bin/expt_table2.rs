//! Table 2: the admission test for a new connection request, walked row
//! by row on a worked example.
//!
//! A 64–256 kbps connection with (σ=8 kb, ρ=64 kbps, L_max=1 kb), delay
//! bound 1 s, jitter bound 1 s, loss bound 5%, routed over four hops
//! (wireless 1.6 Mbps with 1% error → backbone 10 Mbps ×2 → wireless),
//! under both WFQ and RCSP.

use arm_bench::report;
use arm_net::flowspec::{QosRequest, TrafficSpec};
use arm_net::routing::shortest_path;
use arm_net::topology::Topology;
use arm_net::{Connection, Network};
use arm_obs::RunReport;
use arm_qos::admission::{admit, AdmissionRequest, Discipline, MobilityClass, RequestKind};
use arm_sim::SimTime;

fn main() {
    println!("== Table 2: admission test for a new connection request ==\n");
    let mut t = Topology::new();
    let sw = t.add_switch("sw");
    let c0 = t.add_cell("c0", 1600.0, 0.01);
    let c1 = t.add_cell("c1", 1600.0, 0.01);
    t.add_wired_duplex(sw, t.base_station(c0), 10_000.0, 0.0);
    t.add_wired_duplex(sw, t.base_station(c1), 10_000.0, 0.0);
    let mut net = Network::new(t);

    let qos = QosRequest::bandwidth(64.0, 256.0)
        .with_delay(1.0)
        .with_jitter(1.0)
        .with_loss(0.05)
        .with_traffic(TrafficSpec::new(8.0, 64.0));
    println!(
        "request: [b_min, b_max] = [{}, {}] kbps, d = {} s, σ̄ = {} s,",
        qos.b_min, qos.b_max, qos.delay_bound, qos.jitter_bound
    );
    println!(
        "         p_e = {}, (σ, ρ) = ({}, {}), L_max = {} kb\n",
        qos.loss_bound, qos.traffic.sigma, qos.traffic.rho, qos.traffic.l_max
    );

    let mut rep = RunReport::new("expt_table2", "table-2-admission-test");
    for (discipline, name) in [(Discipline::Wfq, "WFQ"), (Discipline::Rcsp, "RCSP")] {
        for (mobility, mname) in [
            (MobilityClass::Static, "static portable"),
            (MobilityClass::Mobile, "mobile portable"),
        ] {
            let id = net.next_conn_id();
            let route = shortest_path(
                net.topology(),
                net.topology().air_node(c0),
                net.topology().air_node(c1),
            )
            .expect("connected");
            net.install(Connection::new(
                id,
                arm_net::ids::PortableId(0),
                c0,
                arm_net::ids::NodeId(0),
                qos,
                route,
                SimTime::ZERO,
            ));
            let out = admit(
                &mut net,
                AdmissionRequest {
                    conn: id,
                    discipline,
                    mobility,
                    kind: RequestKind::New,
                },
            )
            .expect("feasible request");
            println!("--- {name}, {mname} ---");
            println!("  forward pass: bandwidth ok on 4 hops; stamped rate collected");
            println!("    b_stamp = {:.1} kbps", out.b_stamp);
            println!(
                "  destination: d_min = {:.4} s ≤ d = {} s; loss = {:.4} ≤ {}",
                out.d_min, qos.delay_bound, out.loss, qos.loss_bound
            );
            println!("  reverse pass:");
            println!(
                "    granted rate b = {:.1} kbps ({})",
                out.b_granted,
                if mobility == MobilityClass::Static {
                    "b_min + b_stamp"
                } else {
                    "b_min"
                }
            );
            let budgets: Vec<String> = out
                .hop_delay_budgets
                .iter()
                .map(|d| format!("{d:.4}"))
                .collect();
            println!(
                "    relaxed per-hop delay budgets d'_l = [{}] s (sum = {:.4})",
                budgets.join(", "),
                out.hop_delay_budgets.iter().sum::<f64>()
            );
            let bufs: Vec<String> = out.hop_buffers.iter().map(|b| format!("{b:.2}")).collect();
            println!("    buffers reserved per hop = [{}] kb\n", bufs.join(", "));
            rep.notes.push(format!(
                "{name}/{mname}: b_granted={:.1} kbps, d_min={:.4} s, loss={:.4}",
                out.b_granted, out.d_min, out.loss
            ));
            // Clean up for the next variant.
            net.finish(id, arm_net::ConnectionState::Terminated);
        }
    }

    println!("rejection rows (each tested in `arm-qos` unit tests):");
    println!("  bandwidth:  b_min > C_l − b_resv,l − Σ b_min,i at some link");
    println!("  jitter:     (σ + l·L_max)/b_min > σ̄ at hop l (or end-to-end)");
    println!("  delay:      (σ + n·L_max)/b_min + Σ L_max/C_i > d");
    println!("  loss:       1 − Π(1 − p_e,i) > p_e");
    println!("  buffer:     discipline-specific demand exceeds the node pool");
    report::emit_or_warn(&rep);
}
