//! Figure 2: handoff activity in a lounge — the three characteristic
//! shapes that justify the meeting-room / cafeteria / default split, and
//! the §6.4 learning process recovering each class from its activity.

use arm_bench::{ascii_series, report};
use arm_mobility::models::{cafeteria, meeting, random_walk};
use arm_obs::RunReport;
use arm_profiles::classify::{classify, ClassifierConfig};
use arm_profiles::{CellClass, CellProfile, LoungeKind};
use arm_sim::{SimDuration, SimRng, SimTime};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    println!("== Figure 2: handoff activity in a lounge (seed {seed}) ==\n");
    let slot = SimDuration::from_mins(5);

    // Meeting room: spikes at the start and conclusion.
    let menv = meeting::MeetingEnv::build();
    let mparams = meeting::MeetingParams::default();
    let mtrace = meeting::generate(&menv, &mparams, &mut SimRng::new(seed));
    let m_series = mtrace.arrivals_series(menv.m, slot);
    println!(
        "{}",
        ascii_series(
            "meeting room — arrivals per 5 min (spikes at start/conclusion)",
            &m_series.values_padded(SimTime::ZERO + mparams.span),
            1.0
        )
    );

    // Cafeteria: slow time-varying ramp.
    let cenv = cafeteria::CafeteriaEnv::build();
    let cparams = cafeteria::CafeteriaParams::default();
    let ctrace = cafeteria::generate(&cenv, &cparams, &mut SimRng::new(seed));
    let c_series = ctrace.arrivals_series(cenv.f, slot);
    println!(
        "{}",
        ascii_series(
            "cafeteria — arrivals per 5 min (slow time-varying)",
            &c_series.values_padded(SimTime::ZERO + cparams.span),
            1.0
        )
    );

    // Default lounge: random time-varying.
    let denv = arm_mobility::environment::office_wing(3);
    let lounge = denv.by_name("lounge").expect("wing has a lounge");
    let dparams = random_walk::RandomWalkParams {
        population: 60,
        mean_dwell: SimDuration::from_mins(4),
        span: SimDuration::from_mins(180),
        ..Default::default()
    };
    let dtrace = random_walk::generate(&denv, &dparams, &mut SimRng::new(seed));
    let d_series = dtrace.arrivals_series(lounge, slot);
    println!(
        "{}",
        ascii_series(
            "default lounge — arrivals per 5 min (random time-varying)",
            &d_series.values_padded(SimTime::ZERO + dparams.span),
            1.0
        )
    );

    // The learning process (§6.4) recovers the classes from activity.
    println!("--- §6.4 learning: classify each lounge from its handoff profile ---");
    let cfg = ClassifierConfig::default();
    let classify_cell =
        |name: &str, cell, trace: &arm_mobility::MobilityTrace, expect: CellClass| {
            // Feed the cell's actual departures, tracking each portable's
            // entry point so the ⟨prev, next⟩ context is genuine.
            let mut profile =
                CellProfile::new(cell, CellClass::Lounge(LoungeKind::Default), 100_000);
            let mut entered_from: std::collections::BTreeMap<_, _> = Default::default();
            for ev in trace.events() {
                if ev.to == cell {
                    entered_from.insert(ev.portable, ev.from);
                } else if ev.from == Some(cell) {
                    profile.record(arm_profiles::HandoffEvent {
                        portable: ev.portable,
                        prev: entered_from.remove(&ev.portable).flatten(),
                        cur: cell,
                        next: ev.to,
                        time: ev.time,
                    });
                }
            }
            let got = classify(&profile, &cfg);
            println!(
                "  {name:<16} learned: {:<24} (expected {expect})",
                got.map_or_else(|| "insufficient history".into(), |c| c.to_string()),
            );
            got == Some(expect)
        };
    let ok_m = classify_cell(
        "meeting room",
        menv.m,
        &mtrace,
        CellClass::Lounge(LoungeKind::MeetingRoom),
    );
    let ok_c = classify_cell(
        "cafeteria",
        cenv.f,
        &ctrace,
        CellClass::Lounge(LoungeKind::Cafeteria),
    );
    let _ = classify_cell(
        "default lounge",
        lounge,
        &dtrace,
        CellClass::Lounge(LoungeKind::Default),
    );
    println!(
        "\nmeeting/cafeteria recovered: {}",
        if ok_m && ok_c {
            "yes"
        } else {
            "partially (tune thresholds)"
        }
    );

    let mut rep = RunReport::new("expt_fig2", "figure-2-lounge-activity");
    rep.seed = Some(seed);
    rep.notes.push(format!(
        "meeting-room arrivals total {:.0}, cafeteria {:.0}, default lounge {:.0}",
        m_series.total(),
        c_series.total(),
        d_series.total()
    ));
    rep.notes.push(format!(
        "classifier recovered meeting-room={ok_m} cafeteria={ok_c}"
    ));
    report::emit_or_warn(&rep);
}
