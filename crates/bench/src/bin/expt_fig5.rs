//! Figure 5: meeting-room handoff series and the three-algorithm drop
//! comparison.
//!
//! Paper reference: lecture of 35 (load 59%) — brute force 2 drops,
//! aggregate 0, meeting room 0; laboratory of 55 (load 94%) — brute
//! force 7, aggregate 4, meeting room 0. (Our loads are the exact mix
//! expectations, 61%/96%; the paper's 59%/94% reflect its particular
//! draw.)

use arm_bench::{ascii_series, report, table_row};
use arm_core::driver::meeting;
use arm_obs::RunReport;
use arm_sim::SimTime;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    println!("== Figure 5: meeting-room advance reservation (seed {seed}) ==\n");
    let w = [4, 14, 8, 16, 14, 8];
    println!(
        "{}",
        table_row(
            &[
                "N".into(),
                "algorithm".into(),
                "load".into(),
                "attendee drops".into(),
                "walkby drops".into(),
                "blocks".into()
            ],
            &w
        )
    );
    let mut rep = RunReport::new("expt_fig5", "figure-5-meeting-room");
    rep.seed = Some(seed);
    for n in [35usize, 55] {
        for r in meeting::compare(n, seed) {
            rep.notes.push(format!(
                "N={n} {}: drops={} walkby={} blocks={}",
                r.strategy, r.drops, r.walkby_drops, r.blocks
            ));
            println!(
                "{}",
                table_row(
                    &[
                        n.to_string(),
                        r.strategy.clone(),
                        format!("{:.0}%", r.offered_load * 100.0),
                        r.drops.to_string(),
                        r.walkby_drops.to_string(),
                        r.blocks.to_string()
                    ],
                    &w
                )
            );
        }
    }
    println!("\npaper reference:          35: 2 / 0 / 0        55: 7 / 4 / 0\n");

    // The four series of Figure 5 for both class sizes (the run is
    // strategy-independent for the series; use the meeting algorithm's).
    for n in [35usize, 55] {
        let runs = meeting::compare(n, seed);
        let r = &runs[2];
        let label = if n == 35 {
            "lecture of 35"
        } else {
            "laboratory of 55"
        };
        println!("--- {label} ---");
        // Pad every series to the full simulated span so the time axes
        // of the four sub-figures line up (quiet tail minutes record no
        // samples and would otherwise truncate the plot).
        let span_end = SimTime::ZERO + r.span;
        println!(
            "{}",
            ascii_series(
                &format!("Fig 5.a/c — handoffs into the classroom per minute ({label})"),
                &r.into_room.values_padded(span_end),
                1.0
            )
        );
        println!(
            "{}",
            ascii_series(
                "Fig 5.b/d — total handoff activity outside (corridor) per minute",
                &r.corridor_activity.values_padded(span_end),
                1.0
            )
        );
        println!(
            "{}",
            ascii_series(
                "handoffs out of the classroom per minute",
                &r.out_of_room.values_padded(span_end),
                1.0
            )
        );
    }
    report::emit_or_warn(&rep);
}
