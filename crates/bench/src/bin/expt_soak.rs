//! Server soak + crash-recovery drill: the §7.1 office workweek as a
//! long-running server, killed mid-run and recovered.
//!
//! ```text
//! cargo run --release -p arm-bench --bin expt_soak -- [seed] [kill_pct]
//! ```
//!
//! Converts the office scenario plus an active fault schedule into the
//! server event stream, then runs the crash-recovery drill: one server
//! straight through, one killed after `kill_pct`% of the stream
//! (default 50), restored from its own serialized snapshot, and
//! replayed over the suffix. The acceptance bar is **byte equality** of
//! the two final run reports — any snapshot omission (an RNG, a dirty
//! set, a sealed claim) fails the soak. The uninterrupted report and
//! the mid-run snapshot are written to the run-report directory as CI
//! artifacts.

use arm_bench::report;
use arm_core::scenario::{EnvSpec, MobilitySpec, Scenario, WorkloadSpec};
use arm_core::Strategy;
use arm_obs::RunReport;
use arm_server::drill::{events_from_scenario, run_with_kill_restore};
use arm_server::ServerConfig;
use arm_sim::{FaultSchedule, FaultScheduleParams, SimDuration, SimRng};

fn office_cfg(seed: u64) -> ServerConfig {
    ServerConfig {
        scenario: Scenario {
            name: "soak-office".into(),
            environment: EnvSpec::Figure4,
            mobility: MobilitySpec::OfficeCase,
            workload: WorkloadSpec::Paper71,
            strategy: Strategy::Paper,
            cell_throughput_kbps: 1600.0,
            backbone_kbps: 100_000.0,
            wireless_error: 0.0,
            t_th_secs: 300,
            seed,
        },
        slot: SimDuration::from_mins(1),
        checkpoint_every: 256,
        backlog_capacity: 1024,
    }
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let kill_pct: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50)
        .min(100);

    let cfg = office_cfg(seed);
    let params = FaultScheduleParams {
        span: SimDuration::from_mins(40 * 60), // the §7.1 workweek
        links: 20,
        zones: 1,
        portables: 30,
        ..FaultScheduleParams::default()
    };
    let faults = FaultSchedule::generate(&params, &SimRng::new(seed ^ 0x5eed));
    let events = events_from_scenario(&cfg.scenario, &faults)
        .unwrap_or_else(|e| panic!("scenario rejected: {e}"));
    let kill_after = events.len() * kill_pct / 100;
    println!(
        "soak: {} events ({} faults merged), kill at {kill_after} ({kill_pct}%)",
        events.len(),
        faults.len()
    );

    let out = run_with_kill_restore(&cfg, &events, kill_after)
        .unwrap_or_else(|e| panic!("drill failed: {e}"));
    assert_eq!(
        out.uninterrupted, out.recovered,
        "CRASH-RECOVERY DRILL FAILED: restored+replayed report differs from uninterrupted run"
    );
    println!(
        "drill: restore+replay byte-identical to uninterrupted run \
         ({} bytes of report, {} bytes of snapshot)",
        out.uninterrupted.len(),
        out.snapshot_json.len()
    );

    // Artifacts: the (identical) report, annotated with drill context,
    // plus the mid-run snapshot itself.
    let mut rep = RunReport::from_json(&out.uninterrupted)
        .unwrap_or_else(|e| panic!("drill report unparsable: {e}"));
    rep.bin = "expt_soak".to_string();
    rep.notes.push(format!(
        "crash-recovery drill: killed after {}/{} events, restored from a {}-byte snapshot, \
         replayed suffix, final reports byte-identical",
        out.killed_after,
        out.total_events,
        out.snapshot_json.len()
    ));
    rep.notes.push(format!(
        "fault schedule: {} events merged into stream",
        faults.len()
    ));
    report::emit_or_warn(&rep);

    let snap_path = report::report_dir().join("soak-snapshot.json");
    match std::fs::write(&snap_path, &out.snapshot_json) {
        Ok(()) => println!("snapshot artifact -> {}", snap_path.display()),
        Err(e) => eprintln!("warning: could not write snapshot artifact: {e}"),
    }
}
