//! Adaptive streams: loose QoS bounds and maxmin adaptation in action.
//!
//! Three video users share one 1.6 Mbps cell with `[b_min, b_max]`
//! bounds; as they arrive and leave, the resource manager re-divides the
//! excess bandwidth maxmin-fairly — the §5 machinery end to end, plus
//! the distributed ADVERTISE/UPDATE protocol computing the same rates by
//! message passing.
//!
//! ```text
//! cargo run --release -p arm-core --example adaptive_streams
//! ```

use arm_core::{ManagerConfig, ResourceManager, Strategy};
use arm_mobility::environment::IndoorEnvironment;
use arm_net::flowspec::QosRequest;
use arm_net::ids::PortableId;
use arm_profiles::CellClass;
use arm_qos::maxmin::distributed::{DistributedMaxmin, Ev, Variant};
use arm_sim::{Engine, SimDuration, SimTime};

fn main() {
    // One office cell; everyone is static (arrives, then dwells).
    let mut env = IndoorEnvironment::new();
    let office = env.add_cell("office", CellClass::Office);
    let corridor = env.add_cell("corridor", CellClass::Corridor);
    env.connect(office, corridor);
    let net = env.build_network(1600.0, 0.0, 100_000.0);
    let cfg = ManagerConfig {
        strategy: Strategy::Paper,
        t_th: SimDuration::from_secs(1), // everyone is static immediately
        dyn_pool: None,
        resolve_excess: true,
        ..Default::default()
    };
    let mut mgr = ResourceManager::new(env, net, cfg);

    let specs = [
        ("video-a", 64.0, 1200.0),
        ("video-b", 64.0, 800.0),
        ("audio-c", 16.0, 128.0),
    ];
    let mut conns = Vec::new();
    let mut t = SimTime::ZERO;
    println!("arrivals (each admission re-runs maxmin conflict resolution):");
    for (i, (name, lo, hi)) in specs.iter().enumerate() {
        t += SimDuration::from_secs(10);
        let p = PortableId(i as u32);
        mgr.portable_appears(p, office, SimTime::ZERO);
        let qos = QosRequest::bandwidth(*lo, *hi)
            .with_delay(5.0)
            .with_jitter(5.0)
            .with_loss(1.0);
        let id = mgr.request_connection(p, qos, t).expect("admits");
        conns.push((*name, id));
        let rates: Vec<String> = conns
            .iter()
            .map(|(n, c)| format!("{n}={:.0}", mgr.net.get(*c).expect("live").b_current))
            .collect();
        println!("  after {name:<8} rates: {}", rates.join("  "));
    }

    println!("\ndeparture of video-a frees its share:");
    mgr.terminate(conns[0].1, t + SimDuration::from_secs(60));
    for (n, c) in &conns[1..] {
        println!(
            "  {n}: {:.0} kbps",
            mgr.net.get(*c).expect("live").b_current
        );
    }

    // The same division computed by the distributed protocol.
    println!("\ndistributed ADVERTISE/UPDATE protocol on the same problem:");
    let wl = mgr.net.topology().wireless_link(office);
    let mut proto = DistributedMaxmin::new(Variant::Refined, SimDuration::from_millis(1));
    let excess = 1600.0 - 64.0 - 16.0; // floors of b and c
    proto.add_link(wl, excess);
    proto.add_conn(conns[1].1, vec![wl], 800.0 - 64.0);
    proto.add_conn(conns[2].1, vec![wl], 128.0 - 16.0);
    let mut engine = Engine::new(proto);
    engine.schedule_at(SimTime::ZERO, Ev::ChangeExcess { link: wl, excess });
    engine.run();
    for (n, c) in &conns[1..] {
        let floor = mgr.net.get(*c).expect("live").qos.b_min;
        let excess_rate = engine.model().rates().get(c).copied().unwrap_or(0.0);
        println!(
            "  {n}: floor {floor:.0} + converged excess {excess_rate:.0} = {:.0} kbps",
            floor + excess_rate
        );
    }
    let stats = engine.model().stats();
    println!(
        "  ({} ADVERTISE hops, {} UPDATE hops, {} adaptation processes)",
        stats.advertise_hops, stats.update_hops, stats.sessions
    );
}
