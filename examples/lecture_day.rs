//! Lecture day: the paper's flagship scenario end to end.
//!
//! A classroom on a busy corridor; a lecture of 35 and a laboratory of
//! 55; every user carries one 16/64 kbps connection; three advance
//! reservation algorithms compete on the same trace. Prints the Figure 5
//! style activity series and the drop comparison.
//!
//! ```text
//! cargo run --release -p arm-core --example lecture_day
//! ```

use arm_core::driver::meeting;

fn main() {
    println!("lecture day — who survives the class change?\n");
    for (label, n) in [("lecture of 35", 35usize), ("laboratory of 55", 55)] {
        println!("== {label} ==");
        let results = meeting::compare(n, 42);
        for r in &results {
            println!(
                "  {:<12} offered load {:>4.0}%  attendee drops {:>3}  walk-by drops {:>3}",
                r.strategy,
                r.offered_load * 100.0,
                r.drops,
                r.walkby_drops
            );
        }
        let best = &results[2];
        println!("\n  classroom arrivals per minute (meeting-room run):");
        let values = best.into_room.values();
        for (min, v) in values.iter().enumerate() {
            if *v > 0.0 {
                println!("    minute {min:>3}: {}", "#".repeat(*v as usize));
            }
        }
        println!();
    }
    println!("the meeting-room algorithm reserves for exactly the booked attendance");
    println!("and releases no-shows after five minutes — nobody gets dropped.");
}
