//! Quickstart: build an indoor environment, admit QoS-bounded
//! connections, watch a handoff use an advance reservation.
//!
//! ```text
//! cargo run --release -p arm-core --example quickstart
//! ```

use arm_core::{ManagerConfig, ResourceManager, Strategy};
use arm_mobility::environment::Figure4;
use arm_net::flowspec::QosRequest;
use arm_net::ids::PortableId;
use arm_sim::{SimDuration, SimTime};

fn main() {
    // 1. The paper's Figure 4 floor plan: offices A and B, corridors C–G,
    //    each cell a 1.6 Mbps shared wireless medium on a wired backbone.
    let f4 = Figure4::build();
    let net = f4.env.build_network(1600.0, 0.01, 100_000.0);

    // 2. The integrated resource manager, running the paper's full
    //    strategy: three-level prediction, per-class advance reservation,
    //    B_dyn pools, conflict resolution.
    let cfg = ManagerConfig {
        strategy: Strategy::Paper,
        resolve_excess: true,
        ..Default::default()
    };
    let mut mgr = ResourceManager::new(f4.env.clone(), net, cfg);

    // 3. A user appears in corridor C and opens an adaptive video
    //    connection: guaranteed 64 kbps, usable up to 600 kbps.
    let user = PortableId(42);
    let t0 = SimTime::ZERO;
    mgr.portable_appears(user, f4.c, t0);
    let qos = QosRequest::bandwidth(64.0, 600.0)
        .with_delay(1.0)
        .with_jitter(1.0)
        .with_loss(0.05);
    let conn = mgr
        .request_connection(user, qos, t0)
        .expect("an empty cell admits the request");
    println!(
        "admitted {conn} in cell C at {} kbps (floor {} kbps)",
        mgr.net.get(conn).expect("installed").b_current,
        qos.b_min
    );

    // 4. Teach the profile server a habit: C → D → A, four times.
    let mut t = t0;
    for _ in 0..4 {
        t += SimDuration::from_secs(60);
        mgr.portable_moved(user, f4.d, t);
        t += SimDuration::from_secs(30);
        mgr.portable_moved(user, f4.a, t);
        t += SimDuration::from_secs(120);
        mgr.portable_moved(user, f4.d, t);
        t += SimDuration::from_secs(30);
        mgr.portable_moved(user, f4.c, t);
    }
    let pred = mgr.profiles.predict(user);
    println!(
        "profile learned: from C (having come from D) the user heads to {:?} (level {:?})",
        pred.cell, pred.level
    );

    // 5. Move along the habitual path: entering D triggers an advance
    //    reservation in the predicted office A, which the next handoff
    //    then consumes.
    t += SimDuration::from_secs(60);
    let dropped = mgr.portable_moved(user, f4.d, t);
    assert!(dropped.is_empty());
    let wl_a = mgr.net.topology().wireless_link(f4.a);
    let claim = mgr
        .net
        .link(wl_a)
        .claim(arm_net::link::ResvClaim::Conn(conn));
    println!("advance reservation waiting in office A: {claim} kbps");
    t += SimDuration::from_secs(30);
    let dropped = mgr.portable_moved(user, f4.a, t);
    assert!(dropped.is_empty());
    println!(
        "handed off into office A without renegotiation ({} of {} handoffs \
         succeeded this run)",
        mgr.metrics.handoff_successes.get(),
        mgr.metrics.handoff_attempts.get(),
    );

    // 6. After dwelling past T_th the portable turns static and its rate
    //    is upgraded toward b_max by the maxmin conflict resolver.
    t += SimDuration::from_mins(6);
    mgr.slot_tick(t);
    println!(
        "now static in A: rate adapted up to {} kbps (b_max {})",
        mgr.net.get(conn).expect("live").b_current,
        qos.b_max
    );
}
