//! Campus wing: a larger synthetic environment exercising every cell
//! class at once — offices along a corridor, a meeting room, a cafeteria
//! and a default lounge — under mixed mobility, comparing the paper's
//! strategy against the baselines on the same day.
//!
//! ```text
//! cargo run --release -p arm-core --example campus_wing
//! ```

use arm_core::{ManagerConfig, ResourceManager, Strategy};
use arm_mobility::environment::office_wing;
use arm_mobility::models::random_walk::{self, RandomWalkParams};
use arm_mobility::WorkloadMix;
use arm_net::ids::{ConnId, PortableId};
use arm_sim::{SimDuration, SimRng, SimTime};
use std::collections::BTreeMap;

fn main() {
    let env = office_wing(6);
    println!(
        "campus wing: {} cells ({} offices, corridor, meeting room, cafeteria, lounge)\n",
        env.cell_count(),
        6
    );
    let params = RandomWalkParams {
        population: 150,
        mean_dwell: SimDuration::from_mins(6),
        span: SimDuration::from_mins(240),
        ..Default::default()
    };
    let trace = random_walk::generate(&env, &params, &mut SimRng::new(99));
    println!(
        "mobility: {} portables, {} handoffs over 4 hours\n",
        trace.portables().len(),
        trace.len()
    );

    let mix = WorkloadMix::paper71();
    println!(
        "{:<14} {:>8} {:>8} {:>9} {:>9} {:>11}",
        "strategy", "P_d", "P_b", "drops", "blocks", "claims-used"
    );
    for strategy in [
        Strategy::None,
        Strategy::Paper,
        Strategy::BruteForce,
        Strategy::Aggregate,
        Strategy::StaticFraction(0.10),
    ] {
        let net = env.build_network(800.0, 0.0, 100_000.0);
        let cfg = ManagerConfig {
            strategy,
            ..Default::default()
        };
        let mut mgr = ResourceManager::new(env.clone(), net, cfg);
        let mut rng = SimRng::new(7).split("rates");
        let mut open: BTreeMap<PortableId, ConnId> = BTreeMap::new();
        let mut next_slot = SimTime::ZERO + SimDuration::from_mins(1);
        for ev in trace.events() {
            while ev.time >= next_slot {
                mgr.slot_tick(next_slot);
                next_slot += SimDuration::from_mins(1);
            }
            match ev.from {
                None => {
                    mgr.portable_appears(ev.portable, ev.to, ev.time);
                    if let Ok(id) =
                        mgr.request_connection(ev.portable, mix.sample(&mut rng), ev.time)
                    {
                        open.insert(ev.portable, id);
                    }
                }
                Some(_) => {
                    for id in mgr.portable_moved(ev.portable, ev.to, ev.time) {
                        open.retain(|_, c| *c != id);
                    }
                }
            }
        }
        println!(
            "{:<14} {:>7.2}% {:>7.2}% {:>9} {:>9} {:>11}",
            strategy.label(),
            mgr.metrics.p_d() * 100.0,
            mgr.metrics.p_b() * 100.0,
            mgr.metrics.dropped.get(),
            mgr.metrics.blocked.get(),
            mgr.metrics.claims_consumed.get()
        );
    }
    println!("\nsame workload, same movements — only the reservation policy differs.");
    println!("under *memoryless* mobility per-portable prediction cannot help (every");
    println!("guess is wrong), and misplaced claims cost capacity — exactly why the");
    println!("paper classifies such cells as 'default' and reserves probabilistically");
    println!("(see expt_fig6) instead of per-user. Structured movement (quickstart,");
    println!("lecture_day) is where the profile-based strategy wins.");
}
