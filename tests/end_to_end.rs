//! End-to-end reproduction checks: every headline claim of the paper's
//! evaluation, asserted on a full run (these are the same drivers the
//! `expt_*` binaries print from).

use arm_core::driver::fig6::{AdmissionPolicy, Fig6Params};
use arm_core::driver::{fig6, meeting, office};

#[test]
fn sec71_office_case_headline() {
    let r = office::run(42);
    // The measured fan-out, exactly.
    let faculty = r.fanout.iter().find(|f| f.0 == "faculty").expect("row");
    assert_eq!(
        (faculty.1, faculty.2, faculty.3),
        (127, 94, 20),
        "faculty fan-out"
    );
    let students = r.fanout.iter().find(|f| f.0 == "students").expect("row");
    assert_eq!((students.1, students.2, students.3), (218, 12, 173));
    let all = r.fanout.iter().find(|f| f.0 == "all").expect("row");
    assert_eq!(all.1, 1384);
    // Conclusion (a): occupants are predictable.
    assert!(r.accuracy["faculty"].hit_rate() > 0.8);
    assert!(r.accuracy["students"].hit_rate() > 0.8);
    // Conclusion (b): brute force is wasteful relative to prediction.
    assert!(r.reserved_cell_seconds["brute-force"] > 4.0 * r.reserved_cell_seconds["prediction"]);
}

#[test]
fn fig5_meeting_room_headline() {
    // Lecture of 35 (paper: 2/0/0) — shape: the meeting algorithm is
    // perfect and brute force loses the most victims overall. (The
    // paper's exact per-algorithm counts are single-draw artefacts;
    // attendee drops number in the low single digits, so the robust
    // ordering counts attendees + walk-bys.)
    let lecture = meeting::compare(35, 42);
    assert!(lecture[0].drops > 0, "brute force");
    assert!(
        lecture[0].drops + lecture[0].walkby_drops > lecture[1].drops + lecture[1].walkby_drops,
        "brute force must hurt more than aggregate"
    );
    assert_eq!(lecture[2].drops, 0, "meeting room");
    assert_eq!(lecture[2].walkby_drops, 0, "meeting room walk-bys");
    // Laboratory of 55 (paper: 7/4/0) — ordering with a nonzero middle.
    let lab = meeting::compare(55, 42);
    assert!(
        lab[0].drops + lab[0].walkby_drops > lab[1].drops + lab[1].walkby_drops,
        "bf {}+{} > agg {}+{}",
        lab[0].drops,
        lab[0].walkby_drops,
        lab[1].drops,
        lab[1].walkby_drops
    );
    assert!(lab[1].drops > 0);
    assert_eq!(lab[2].drops, 0, "meeting room never drops");
    // Figure 5's series shape: classroom arrivals cluster in the window
    // around the start; corridor activity dominates throughout.
    let r = &lab[2];
    let peak = r.into_room.peak_slot().expect("arrivals");
    assert!((19..=32).contains(&peak), "arrival peak at minute {peak}");
    assert!(r.corridor_activity.total() > r.into_room.total());
    // Departures cluster after the end (minute 80+).
    let dep_peak = r.out_of_room.peak_slot().expect("departures");
    assert!(
        (80..=86).contains(&dep_peak),
        "departure peak at {dep_peak}"
    );
}

#[test]
fn fig6_probabilistic_algorithm_headline() {
    let params = Fig6Params {
        span_units: 1200.0,
        ..Default::default()
    };
    // The trade-off: as P_QOS loosens along one curve, P_b falls and P_d
    // rises (weakly, given finite-run noise at the extremes).
    let pts = fig6::curve(0.05, &[0.001, 0.01, 0.1, 0.8], params);
    let first = pts.first().expect("points").1;
    let last = pts.last().expect("points").1;
    assert!(first.p_b > last.p_b, "{} vs {}", first.p_b, last.p_b);
    assert!(first.p_d < last.p_d, "{} vs {}", first.p_d, last.p_d);
    // All curves coincide at large P_d (they all become "admit if it
    // fits"): compare two windows at P_QOS = 0.8.
    let a = fig6::curve(0.01, &[0.8], params)[0].1;
    let b = fig6::curve(0.25, &[0.8], params)[0].1;
    assert!((a.p_b - b.p_b).abs() < 0.01);
    assert!((a.p_d - b.p_d).abs() < 0.01);
    // The probabilistic scheme beats no-protection on P_d at its tight
    // end.
    let unprotected = fig6::run(AdmissionPolicy::None, params);
    assert!(first.p_d < unprotected.p_d);
}

#[test]
fn fig6_static_reservation_is_dominated() {
    // The paper's closing claim: "our reservation algorithm outperforms
    // the static reservation algorithm in all scenarios we have
    // simulated" — at comparable blocking, the probabilistic algorithm
    // drops no more.
    let params = Fig6Params {
        span_units: 3000.0,
        ..Default::default()
    };
    let stat = fig6::run(AdmissionPolicy::StaticReservation { reserved: 4.0 }, params);
    // P_d at these operating points is ~4e-4 — tens of drops over the
    // run — so weak dominance is asserted up to the counting noise of a
    // handful of drops (5e-5 ≈ 20 of ~420k handoffs).
    let noise = 5e-5;
    let mut dominated = false;
    for p_qos in [0.5, 0.3, 0.2, 0.1, 0.05, 0.02, 0.01, 0.005, 0.002, 0.001] {
        let p = fig6::run(
            AdmissionPolicy::Probabilistic {
                window_t: 0.05,
                p_qos,
            },
            params,
        );
        if p.p_b <= stat.p_b + 1e-9 && p.p_d <= stat.p_d + noise {
            dominated = true;
            break;
        }
    }
    assert!(
        dominated,
        "some probabilistic point weakly dominates static"
    );
}
