//! Cross-crate integration tests: the paper's algorithms composed
//! end-to-end on the full stack (sim kernel → network → QoS → profiles →
//! reservation → manager).

use arm_core::{ManagerConfig, ResourceManager, Strategy};
use arm_mobility::environment::{office_wing, Figure4};
use arm_mobility::models::office_case::{self, OfficeCaseParams};
use arm_mobility::models::random_walk::{self, RandomWalkParams};
use arm_mobility::WorkloadMix;
use arm_net::flowspec::QosRequest;
use arm_net::ids::{ConnId, PortableId};
use arm_qos::maxmin::centralized::MaxminProblem;
use arm_sim::{SimDuration, SimRng, SimTime};
use std::collections::BTreeMap;

fn qos(kbps: f64) -> QosRequest {
    QosRequest::fixed(kbps)
        .with_delay(30.0)
        .with_jitter(30.0)
        .with_loss(1.0)
}

/// Replay an arbitrary trace through a manager with one connection per
/// portable; returns the manager for inspection.
fn replay(
    env: &arm_mobility::IndoorEnvironment,
    trace: &arm_mobility::MobilityTrace,
    strategy: Strategy,
    cell_kbps: f64,
    seed: u64,
) -> ResourceManager {
    let net = env.build_network(cell_kbps, 0.0, 1_000_000.0);
    let cfg = ManagerConfig {
        strategy,
        ..Default::default()
    };
    let mut mgr = ResourceManager::new(env.clone(), net, cfg);
    let mix = WorkloadMix::paper71();
    let mut rng = SimRng::new(seed).split("rates");
    let mut open: BTreeMap<PortableId, ConnId> = BTreeMap::new();
    let mut next_slot = SimTime::ZERO + SimDuration::from_mins(1);
    for ev in trace.events() {
        while ev.time >= next_slot {
            mgr.slot_tick(next_slot);
            next_slot += SimDuration::from_mins(1);
        }
        match ev.from {
            None => {
                mgr.portable_appears(ev.portable, ev.to, ev.time);
                if let Ok(id) = mgr.request_connection(ev.portable, mix.sample(&mut rng), ev.time) {
                    open.insert(ev.portable, id);
                }
            }
            Some(_) => {
                for id in mgr.portable_moved(ev.portable, ev.to, ev.time) {
                    open.retain(|_, c| *c != id);
                }
            }
        }
    }
    mgr
}

#[test]
fn full_stack_invariants_hold_under_random_churn() {
    let env = office_wing(4);
    let params = RandomWalkParams {
        population: 60,
        mean_dwell: SimDuration::from_mins(3),
        span: SimDuration::from_mins(60),
        ..Default::default()
    };
    let trace = random_walk::generate(&env, &params, &mut SimRng::new(5));
    for strategy in [
        Strategy::None,
        Strategy::Paper,
        Strategy::BruteForce,
        Strategy::Aggregate,
        Strategy::StaticFraction(0.1),
    ] {
        let mgr = replay(&env, &trace, strategy, 800.0, 5);
        assert!(
            mgr.net.check_invariants().is_ok(),
            "{strategy:?}: {:?}",
            mgr.net.check_invariants()
        );
        // Conservation: every handoff attempt either succeeded or dropped.
        assert_eq!(
            mgr.metrics.handoff_attempts.get(),
            mgr.metrics.handoff_successes.get() + mgr.metrics.dropped.get(),
            "{strategy:?}"
        );
    }
}

#[test]
fn whole_runs_are_deterministic() {
    let env = office_wing(3);
    let params = RandomWalkParams {
        population: 30,
        span: SimDuration::from_mins(45),
        ..Default::default()
    };
    let trace = random_walk::generate(&env, &params, &mut SimRng::new(9));
    let a = replay(&env, &trace, Strategy::Paper, 800.0, 9);
    let b = replay(&env, &trace, Strategy::Paper, 800.0, 9);
    assert_eq!(a.metrics.dropped.get(), b.metrics.dropped.get());
    assert_eq!(a.metrics.blocked.get(), b.metrics.blocked.get());
    assert_eq!(
        a.metrics.handoff_attempts.get(),
        b.metrics.handoff_attempts.get()
    );
}

#[test]
fn profiles_feed_predictions_that_save_handoffs() {
    // On the Figure 4 workweek, the paper strategy's predictive claims
    // mean zero drops for the habitual movers even when the cells carry
    // competing load.
    let f4 = Figure4::build();
    let params = OfficeCaseParams::default();
    let trace = office_case::generate(&f4, &params, &mut SimRng::new(11));
    let mgr = replay(&f4.env, &trace, Strategy::Paper, 1600.0, 11);
    // The faculty/student populations keep their connections alive.
    assert_eq!(mgr.metrics.dropped.get(), 0, "no drops on the workweek");
    assert!(mgr.metrics.handoff_attempts.get() > 4000);
    assert!(mgr.net.check_invariants().is_ok());
}

#[test]
fn static_portables_get_upgraded_mobile_stay_at_floor() {
    let f4 = Figure4::build();
    let net = f4.env.build_network(1600.0, 0.0, 1_000_000.0);
    let cfg = ManagerConfig {
        strategy: Strategy::Paper,
        resolve_excess: true,
        ..Default::default()
    };
    let mut mgr = ResourceManager::new(f4.env.clone(), net, cfg);
    // A static resident of A and a fresh mover, both adaptive 64–600.
    let resident = PortableId(1);
    mgr.portable_appears(resident, f4.a, SimTime::ZERO);
    let adaptive = QosRequest::bandwidth(64.0, 600.0)
        .with_delay(10.0)
        .with_jitter(10.0)
        .with_loss(1.0);
    let rc = mgr
        .request_connection(resident, adaptive, SimTime::from_mins(10))
        .expect("admits");
    // Static: upgraded to b_max immediately (alone in the cell).
    assert!((mgr.net.get(rc).unwrap().b_current - 600.0).abs() < 1e-6);

    let mover = PortableId(2);
    mgr.portable_appears(mover, f4.c, SimTime::from_mins(10));
    let mc = mgr
        .request_connection(mover, adaptive, SimTime::from_mins(10))
        .expect("admits");
    // Mobile: pinned at the floor.
    assert!((mgr.net.get(mc).unwrap().b_current - 64.0).abs() < 1e-6);
    // The mover hands off twice; still at floor.
    mgr.portable_moved(mover, f4.d, SimTime::from_mins(11));
    mgr.portable_moved(mover, f4.e, SimTime::from_mins(12));
    assert!((mgr.net.get(mc).unwrap().b_current - 64.0).abs() < 1e-6);
}

#[test]
fn ledger_totals_match_maxmin_reference_after_churn() {
    // After arbitrary admissions and departures with resolve_excess on,
    // the allocations equal the centralized maxmin optimum.
    let f4 = Figure4::build();
    let net = f4.env.build_network(1600.0, 0.0, 1_000_000.0);
    let cfg = ManagerConfig {
        strategy: Strategy::None,
        t_th: SimDuration::from_secs(0), // everyone static: all adapt
        resolve_excess: true,
        dyn_pool: None,
        ..Default::default()
    };
    let mut mgr = ResourceManager::new(f4.env.clone(), net, cfg);
    let adaptive = |lo: f64, hi: f64| {
        QosRequest::bandwidth(lo, hi)
            .with_delay(10.0)
            .with_jitter(10.0)
            .with_loss(1.0)
    };
    let mut ids = Vec::new();
    for (i, (lo, hi)) in [(64.0, 900.0), (64.0, 900.0), (16.0, 200.0), (128.0, 1600.0)]
        .iter()
        .enumerate()
    {
        let p = PortableId(i as u32);
        mgr.portable_appears(p, f4.c, SimTime::ZERO);
        ids.push(
            mgr.request_connection(p, adaptive(*lo, *hi), SimTime::from_secs(i as u64 + 1))
                .expect("admits"),
        );
    }
    mgr.terminate(ids[1], SimTime::from_secs(10));
    // Reference solution from the current ledgers.
    let problem = MaxminProblem::from_network(&mgr.net);
    let alloc = problem.solve();
    assert!(problem.verify_maxmin(&alloc).is_ok());
    for c in mgr.net.live_connections() {
        let expect = c.qos.b_min + alloc.get(&c.id).copied().unwrap_or(0.0);
        assert!(
            (c.b_current - expect.clamp(c.qos.b_min, c.qos.b_max)).abs() < 1e-6,
            "{:?}: {} vs {}",
            c.id,
            c.b_current,
            expect
        );
    }
}

#[test]
fn blocking_and_dropping_respond_to_capacity() {
    // Shrinking the medium turns a clean run into blocks and drops.
    let env = office_wing(3);
    let params = RandomWalkParams {
        population: 50,
        mean_dwell: SimDuration::from_mins(3),
        span: SimDuration::from_mins(45),
        ..Default::default()
    };
    let trace = random_walk::generate(&env, &params, &mut SimRng::new(13));
    let roomy = replay(&env, &trace, Strategy::None, 4000.0, 13);
    let tight = replay(&env, &trace, Strategy::None, 120.0, 13);
    assert_eq!(roomy.metrics.blocked.get(), 0);
    assert!(tight.metrics.blocked.get() > 0);
    assert!(tight.metrics.p_d() >= roomy.metrics.p_d());
}

#[test]
fn meeting_room_claims_survive_competing_load() {
    // A meeting room with a booked class admits its attendees even while
    // random wanderers fill the wing.
    use arm_reservation::meeting::{BookingCalendar, Meeting};
    let env = office_wing(3);
    let meeting_cell = env.by_name("meeting-room").expect("wing has one");
    let corridor0 = env.by_name("corridor-0").expect("exists");
    let net = env.build_network(800.0, 0.0, 1_000_000.0);
    let mut mgr = ResourceManager::new(env.clone(), net, ManagerConfig::default());
    let mut cal = BookingCalendar::new();
    cal.book(Meeting {
        t_start: SimTime::from_mins(30),
        t_end: SimTime::from_mins(80),
        expected: 12,
    });
    mgr.set_calendar(meeting_cell, cal);
    // Competing load next door.
    for i in 0..15u32 {
        let p = PortableId(500 + i);
        mgr.portable_appears(p, corridor0, SimTime::ZERO);
        let _ = mgr.request_connection(p, qos(28.0), SimTime::from_secs(1 + u64::from(i)));
    }
    mgr.slot_tick(SimTime::from_mins(21));
    // Attendees stream in through corridor-0 during the window.
    let mut drops = 0;
    for i in 0..12u32 {
        let p = PortableId(600 + i);
        let t = SimTime::from_mins(22) + SimDuration::from_secs(u64::from(i) * 30);
        mgr.portable_appears(p, corridor0, t);
        if mgr.request_connection(p, qos(28.0), t).is_ok() {
            drops += mgr
                .portable_moved(p, meeting_cell, t + SimDuration::from_secs(20))
                .len();
        }
    }
    assert_eq!(drops, 0, "booked attendees must not be dropped");
    assert!(mgr.net.check_invariants().is_ok());
}
